"""Compiled decode plans for the offloaded arena deserializer.

The offload twin of :mod:`repro.proto.decode_plan`: where the reference
plan compiler specializes a ``MessageDescriptor`` into a tag→handler
table, this module specializes an :class:`~repro.offload.adt.AdtEntry`.
Everything the interpretive :class:`ArenaDeserializer` resolves per field
— the ``field_by_number`` probe, the ``FieldType`` comparison ladder, the
has-bit word arithmetic, the NumPy dtype lookup — is resolved once per
ADT entry at plan-compile time:

* member offsets and precompiled ``struct.Struct`` packers for varint
  scalars (fixed-width scalars memcpy their wire bytes verbatim — the
  in-object representation *is* the little-endian wire representation);
* the has-bit word offset and mask as plain ints;
* oneof sibling restore recipes (default-instance slot slices + has-bit
  clear masks) as a flat list;
* the child plan index for message fields.

Plans are compiled lazily per entry and cached on the
:class:`ArenaPlanCache` owned by the deserializer, keyed by ADT index;
cache traffic feeds the shared
:data:`repro.proto.decode_plan.PLAN_METRICS`.

The plan path preserves the interpretive path's
:class:`~repro.offload.arena_deserializer.DeserializeStats` census
exactly — the calibrated cost model converts that census into CPU/DPU
time, so both paths must charge identical operation counts for the same
wire bytes.  Repeated-field materialization and string crafting delegate
to the deserializer's existing composite writers for the same reason.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.proto.decode_plan import PLAN_METRICS
from repro.proto.descriptor import FieldType
from repro.proto.utf8 import validate_utf8
from repro.proto.wire_format import (
    TruncatedMessageError,
    WireFormatError,
    WireType,
    decode_packed_varints,
    make_tag,
    read_varint,
)

from .adt import AdtEntry, AdtField
from .arena_deserializer import (
    _ELEM_DTYPE,
    _FIXED_WIDTH,
    HASBITS_OFFSET,
    DeserializeError,
)

__all__ = ["ArenaPlanCache", "ArenaEntryPlan", "ArenaGenCache"]

_U32 = 0xFFFFFFFF
_U64 = (1 << 64) - 1

# In-object packers for varint-carried kinds (fixed-width kinds memcpy
# their wire bytes instead).
_VARINT_PACK = {
    FieldType.BOOL: struct.Struct("<B").pack,
    FieldType.INT32: struct.Struct("<i").pack,
    FieldType.SINT32: struct.Struct("<i").pack,
    FieldType.ENUM: struct.Struct("<i").pack,
    FieldType.UINT32: struct.Struct("<I").pack,
    FieldType.INT64: struct.Struct("<q").pack,
    FieldType.SINT64: struct.Struct("<q").pack,
    FieldType.UINT64: struct.Struct("<Q").pack,
}


def _u32_to_i32(v: int) -> int:
    v &= _U32
    return v - (1 << 32) if v >= (1 << 31) else v


def _u64_to_i64(v: int) -> int:
    v &= _U64
    return v - (1 << 64) if v >= (1 << 63) else v


def _zigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


_VARINT_CONVERT = {
    FieldType.BOOL: lambda raw: 1 if raw else 0,
    FieldType.SINT32: _zigzag,
    FieldType.SINT64: _zigzag,
    FieldType.INT32: _u32_to_i32,
    FieldType.ENUM: _u32_to_i32,
    FieldType.INT64: _u64_to_i64,
    FieldType.UINT32: lambda raw: raw & _U32,
    FieldType.UINT64: lambda raw: raw,
}


class ArenaEntryPlan:
    """One ADT entry's compiled tag→handler table.

    Handlers have the signature
    ``handler(obj, buf, pos, end, arena, depth, pending) -> new_pos``
    where ``pending`` accumulates repeated-field values for end-of-message
    materialization, exactly like the interpretive ``_parse_into``.
    """

    __slots__ = ("entry", "index", "handlers", "tag_names")

    def __init__(self, entry: AdtEntry, index: int) -> None:
        self.entry = entry
        self.index = index
        self.handlers: dict[int, object] = {}
        self.tag_names: dict[int, str] = {}


class ArenaPlanCache:
    """Per-deserializer plan store, keyed by ADT entry index."""

    def __init__(self, deser) -> None:
        self.deser = deser
        self.stats = deser.stats
        self._plans: list[ArenaEntryPlan | None] = [None] * len(deser.adt.entries)

    # -- cache ---------------------------------------------------------------

    def plan(self, index: int) -> ArenaEntryPlan:
        plan = self._plans[index]
        if plan is None:
            PLAN_METRICS.cache_misses += 1
            plan = self._compile(index)
        else:
            PLAN_METRICS.cache_hits += 1
        return plan

    # -- driving loop --------------------------------------------------------

    def parse_message(self, index: int, buf, pos: int, end: int, arena, depth: int) -> int:
        """Plan twin of ``ArenaDeserializer._parse_message``."""
        deser = self.deser
        entry = deser.adt.entry(index)
        obj = arena.allocate(entry.sizeof, entry.alignof)
        arena.space.write(obj, entry.default_bytes)
        stats = self.stats
        stats.bytes_memcpy += entry.sizeof
        stats.messages += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        self.parse_into(index, obj, buf, pos, end, arena, depth)
        return obj

    def parse_into(self, index: int, obj: int, buf, pos: int, end: int, arena, depth: int) -> None:
        plan = self.plan(index)
        handlers = plan.handlers
        entry = plan.entry
        pending: dict[int, list] = {}
        while pos < end:
            b = buf[pos]
            if b < 0x80:
                tag = b
                pos += 1
            else:
                tag, pos = read_varint(buf, pos)
            handler = handlers.get(tag)
            if handler is None:
                pos = self._parse_unknown(plan, buf, tag, pos, end)
            else:
                try:
                    pos = handler(obj, buf, pos, end, arena, depth, pending)
                except (WireFormatError, ValueError, struct.error) as exc:
                    raise DeserializeError(
                        f"{entry.full_name}.{plan.tag_names[tag]}: {exc}"
                    ) from exc
        if pos != end:
            raise DeserializeError(f"{entry.full_name}: overran submessage end")
        if pending:
            deser = self.deser
            for number, values in pending.items():
                deser._materialize_repeated(
                    entry.field_by_number(number), obj, values, arena
                )

    def _parse_unknown(self, plan: ArenaEntryPlan, buf, tag: int, pos: int, end: int) -> int:
        number = tag >> 3
        wire_type = tag & 0x7
        if number == 0:
            raise WireFormatError("field number 0 is invalid")
        if not WireType.is_valid(wire_type):
            raise WireFormatError(f"unsupported wire type {wire_type}")
        f = plan.entry.field_by_number(number)
        if f is not None:
            raise DeserializeError(
                f"{plan.entry.full_name}.{f.name}: wire type {wire_type} "
                f"for {f.kind.value} field"
            )
        return self.deser._skip(buf, pos, wire_type, end)

    # -- compilation ---------------------------------------------------------

    def _compile(self, index: int) -> ArenaEntryPlan:
        entry = self.deser.adt.entry(index)
        plan = ArenaEntryPlan(entry, index)
        self._plans[index] = plan
        PLAN_METRICS.plans_compiled += 1
        for f in entry.fields:
            self._compile_field(plan, entry, f)
        return plan

    def _compile_field(self, plan: ArenaEntryPlan, entry: AdtEntry, f: AdtField) -> None:
        deser = self.deser
        stats = self.stats
        kind = f.kind
        offset = f.offset
        number = f.number
        set_has = _make_set_has(f.has_bit)
        clear_siblings = _make_clear_siblings(entry, f, deser)

        def register(wire_type: int, handler) -> None:
            tag = make_tag(number, wire_type)
            plan.handlers[tag] = handler
            plan.tag_names[tag] = f.name

        if kind is FieldType.MESSAGE:
            child = f.child
            cache = self

            if f.repeated:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    n, pos = read_varint(buf, pos)
                    npos = pos + n
                    if npos > end:
                        raise TruncatedMessageError("submessage overruns parent")
                    addr = cache.parse_message(child, buf, pos, npos, arena, depth + 1)
                    pending.setdefault(number, []).append(addr)
                    return npos

            else:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    n, pos = read_varint(buf, pos)
                    npos = pos + n
                    if npos > end:
                        raise TruncatedMessageError("submessage overruns parent")
                    space = arena.space
                    if clear_siblings is not None:
                        clear_siblings(space, obj)
                    existing = space.read_u64(obj + offset)
                    if existing == 0:
                        addr = cache.parse_message(child, buf, pos, npos, arena, depth + 1)
                        space.write_u64(obj + offset, addr)
                    else:
                        # proto3 merge: re-parse into the existing child.
                        cache.parse_into(child, existing, buf, pos, npos, arena, depth + 1)
                    set_has(space, obj)
                    return npos

            register(WireType.LENGTH_DELIMITED, handler)
            return

        if kind in (FieldType.STRING, FieldType.BYTES):
            is_string = kind is FieldType.STRING

            if f.repeated:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    n, pos = read_varint(buf, pos)
                    npos = pos + n
                    if npos > end:
                        raise TruncatedMessageError("string overruns buffer")
                    raw = bytes(buf[pos:npos])
                    if is_string:
                        validate_utf8(raw)
                        stats.utf8_bytes_validated += n
                    stats.string_bytes_copied += n
                    pending.setdefault(number, []).append(raw)
                    return npos

            else:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    n, pos = read_varint(buf, pos)
                    npos = pos + n
                    if npos > end:
                        raise TruncatedMessageError("string overruns buffer")
                    raw = bytes(buf[pos:npos])
                    if is_string:
                        validate_utf8(raw)
                        stats.utf8_bytes_validated += n
                    stats.string_bytes_copied += n
                    space = arena.space
                    if clear_siblings is not None:
                        clear_siblings(space, obj)
                    deser._write_string(arena, obj + offset, raw)
                    set_has(space, obj)
                    return npos

            register(WireType.LENGTH_DELIMITED, handler)
            return

        # Numeric scalar: natural-wire-type handler plus (when repeated)
        # a packed LENGTH_DELIMITED handler with bulk decoding.
        width = _FIXED_WIDTH.get(kind)
        if width is not None:
            natural_wt = WireType.FIXED32 if width == 4 else WireType.FIXED64

            def read_one(buf, pos, end):
                npos = pos + width
                if npos > end:
                    raise TruncatedMessageError(
                        f"fixed{width * 8} extends past end of buffer"
                    )
                stats.fixed_fields += 1
                return bytes(buf[pos:npos]), npos

            if f.repeated:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    raw, pos = read_one(buf, pos, end)
                    pending.setdefault(number, []).append(
                        np.frombuffer(raw, dtype=_ELEM_DTYPE[kind])[0]
                    )
                    return pos

            else:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    raw, pos = read_one(buf, pos, end)
                    space = arena.space
                    if clear_siblings is not None:
                        clear_siblings(space, obj)
                    # The wire encoding is the in-object encoding: memcpy.
                    space.write(obj + offset, raw)
                    set_has(space, obj)
                    return pos

            register(natural_wt, handler)
        else:
            convert = _VARINT_CONVERT[kind]
            pack = _VARINT_PACK[kind]

            if f.repeated:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    if pos >= end:
                        raise TruncatedMessageError(
                            "varint extends past end of buffer"
                        )
                    start = pos
                    b = buf[pos]
                    if b < 0x80:
                        raw = b
                        pos += 1
                    else:
                        raw, pos = read_varint(buf, pos)
                    stats.varints_decoded += 1
                    stats.varint_bytes += pos - start
                    pending.setdefault(number, []).append(convert(raw))
                    return pos

            else:

                def handler(obj, buf, pos, end, arena, depth, pending):
                    if pos >= end:
                        raise TruncatedMessageError(
                            "varint extends past end of buffer"
                        )
                    start = pos
                    b = buf[pos]
                    if b < 0x80:
                        raw = b
                        pos += 1
                    else:
                        raw, pos = read_varint(buf, pos)
                    stats.varints_decoded += 1
                    stats.varint_bytes += pos - start
                    space = arena.space
                    if clear_siblings is not None:
                        clear_siblings(space, obj)
                    space.write(obj + offset, pack(convert(raw)))
                    set_has(space, obj)
                    return pos

            register(WireType.VARINT, handler)

        if f.repeated:
            packed = _make_packed_handler(f, number, stats)
            register(WireType.LENGTH_DELIMITED, packed)


def _make_set_has(has_bit: int):
    word_off = HASBITS_OFFSET + 4 * (has_bit // 32)
    mask = 1 << (has_bit % 32)

    def set_has(space, obj: int) -> None:
        addr = obj + word_off
        space.write_u32(addr, space.read_u32(addr) | mask)

    return set_has


def _make_clear_siblings(entry: AdtEntry, f: AdtField, deser):
    """Precompute the oneof sibling restore recipe (default-slot bytes +
    has-bit clear) — ``None`` when the field is not in a oneof."""
    if f.oneof_group < 0:
        return None
    recipes = []
    for other in entry.fields:
        if other.oneof_group != f.oneof_group or other.number == f.number:
            continue
        size = deser._slot_size(other)
        default = entry.default_bytes[other.offset : other.offset + size]
        word_off = HASBITS_OFFSET + 4 * (other.has_bit // 32)
        inv_mask = ~(1 << (other.has_bit % 32)) & _U32
        recipes.append((other.offset, default, word_off, inv_mask))
    if not recipes:
        return None

    def clear(space, obj: int) -> None:
        for off, default, word_off, inv_mask in recipes:
            space.write(obj + off, default)
            addr = obj + word_off
            space.write_u32(addr, space.read_u32(addr) & inv_mask)

    return clear


# ---------------------------------------------------------------------------
# Generated per-entry deserializers (the gen_codec twin for ADT entries)
# ---------------------------------------------------------------------------

_ARENA_CONVERT_EXPR = {
    FieldType.BOOL: "(1 if raw else 0)",
    FieldType.UINT32: "raw & 0xFFFFFFFF",
    FieldType.UINT64: "raw",
    FieldType.INT32: "((raw & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000",
    FieldType.ENUM: "((raw & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000",
    FieldType.INT64: "((raw & 0x%X) ^ 0x8000000000000000) - 0x8000000000000000" % _U64,
    FieldType.SINT32: "(raw >> 1) ^ -(raw & 1)",
    FieldType.SINT64: "(raw >> 1) ^ -(raw & 1)",
}

_ARENA_BULK_EXPR = {
    FieldType.BOOL: "list((raw != 0).astype('u1'))",
    FieldType.UINT32: "list(raw.astype(_np.uint32))",
    FieldType.UINT64: "list(raw)",
    FieldType.INT32: "list(raw.astype(_np.uint32).astype(_np.int32))",
    FieldType.ENUM: "list(raw.astype(_np.uint32).astype(_np.int32))",
    FieldType.INT64: "list(raw.astype(_np.int64))",
    FieldType.SINT32: (
        "list((raw >> _one).astype(_np.int64) ^ -(raw & _one).astype(_np.int64))"
    ),
    FieldType.SINT64: (
        "list((raw >> _one).astype(_np.int64) ^ -(raw & _one).astype(_np.int64))"
    ),
}


class ArenaGenCache:
    """Generated per-ADT-entry deserializers — the
    :mod:`repro.proto.gen_codec` idiom applied to arena decoding.

    Same driving contract as :class:`ArenaPlanCache` (``parse_message`` /
    ``parse_into``), but each entry's tag dispatch is one compiled
    straight-line function with member offsets, has-bit masks and oneof
    restore recipes burned in as source literals.  Charges the exact
    :class:`~repro.offload.arena_deserializer.DeserializeStats` census the
    plan and interpretive paths charge; packed varint runs route through
    :func:`~repro.proto.wire_format.decode_packed_varints_fast`.
    """

    def __init__(self, deser) -> None:
        self.deser = deser
        self.stats = deser.stats
        self._decoders: list = [None] * len(deser.adt.entries)
        self._sources: list[str | None] = [None] * len(deser.adt.entries)

    # -- cache ---------------------------------------------------------------

    def decoder(self, index: int):
        fn = self._decoders[index]
        if fn is None:
            fn = self._compile(index)
        else:
            PLAN_METRICS.gen_cache_hits += 1
        return fn

    def source(self, index: int) -> str:
        self.decoder(index)
        return self._sources[index]

    # -- driving loop --------------------------------------------------------

    def parse_message(self, index: int, buf, pos: int, end: int, arena, depth: int) -> int:
        deser = self.deser
        entry = deser.adt.entry(index)
        obj = arena.allocate(entry.sizeof, entry.alignof)
        arena.space.write(obj, entry.default_bytes)
        stats = self.stats
        stats.bytes_memcpy += entry.sizeof
        stats.messages += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        self.decoder(index)(obj, buf, pos, end, arena, depth)
        return obj

    def parse_into(self, index: int, obj: int, buf, pos: int, end: int, arena, depth: int) -> None:
        self.decoder(index)(obj, buf, pos, end, arena, depth)

    def _parse_unknown(self, entry: AdtEntry, buf, tag: int, pos: int, end: int) -> int:
        number = tag >> 3
        wire_type = tag & 0x7
        if number == 0:
            raise WireFormatError("field number 0 is invalid")
        if not WireType.is_valid(wire_type):
            raise WireFormatError(f"unsupported wire type {wire_type}")
        f = entry.field_by_number(number)
        if f is not None:
            raise DeserializeError(
                f"{entry.full_name}.{f.name}: wire type {wire_type} "
                f"for {f.kind.value} field"
            )
        return self.deser._skip(buf, pos, wire_type, end)

    # -- source generation ---------------------------------------------------

    def _field_branches(self, entry: AdtEntry, ns: dict) -> list[tuple[int, str, list[str]]]:
        deser = self.deser
        branches: list[tuple[int, str, list[str]]] = []
        for i, f in enumerate(entry.fields):
            kind = f.kind
            number = f.number
            offset = f.offset
            word_off = HASBITS_OFFSET + 4 * (f.has_bit // 32)
            mask = 1 << (f.has_bit % 32)
            set_has = [
                f"addr = obj + {word_off}",
                f"space.write_u32(addr, space.read_u32(addr) | {mask})",
            ]
            clear = []
            if f.oneof_group >= 0:
                for k, other in enumerate(entry.fields):
                    if other.oneof_group != f.oneof_group or other.number == number:
                        continue
                    size = deser._slot_size(other)
                    ns[f"_def{i}_{k}"] = entry.default_bytes[
                        other.offset : other.offset + size
                    ]
                    o_word = HASBITS_OFFSET + 4 * (other.has_bit // 32)
                    o_inv = ~(1 << (other.has_bit % 32)) & _U32
                    clear += [
                        f"space.write(obj + {other.offset}, _def{i}_{k})",
                        f"addr = obj + {o_word}",
                        f"space.write_u32(addr, space.read_u32(addr) & {o_inv})",
                    ]

            if kind is FieldType.MESSAGE:
                child = f.child
                tag = make_tag(number, WireType.LENGTH_DELIMITED)
                if f.repeated:
                    body = [
                        "n, pos = _rv(buf, pos)",
                        "npos = pos + n",
                        "if npos > end:",
                        "    raise _Trunc('submessage overruns parent')",
                        f"addr = _cache.parse_message({child}, buf, pos, npos, arena, depth + 1)",
                        f"pending.setdefault({number}, []).append(addr)",
                        "pos = npos",
                    ]
                else:
                    body = [
                        "n, pos = _rv(buf, pos)",
                        "npos = pos + n",
                        "if npos > end:",
                        "    raise _Trunc('submessage overruns parent')",
                        *clear,
                        f"existing = space.read_u64(obj + {offset})",
                        "if existing == 0:",
                        f"    addr = _cache.parse_message({child}, buf, pos, npos, arena, depth + 1)",
                        f"    space.write_u64(obj + {offset}, addr)",
                        "else:",
                        f"    _cache.parse_into({child}, existing, buf, pos, npos, arena, depth + 1)",
                        *set_has,
                        "pos = npos",
                    ]
                branches.append((tag, f.name, body))
                continue

            if kind in (FieldType.STRING, FieldType.BYTES):
                tag = make_tag(number, WireType.LENGTH_DELIMITED)
                check = (
                    ["_vu8(raw)", "stats.utf8_bytes_validated += n"]
                    if kind is FieldType.STRING
                    else []
                )
                if f.repeated:
                    body = [
                        "n, pos = _rv(buf, pos)",
                        "npos = pos + n",
                        "if npos > end:",
                        "    raise _Trunc('string overruns buffer')",
                        "raw = bytes(buf[pos:npos])",
                        *check,
                        "stats.string_bytes_copied += n",
                        f"pending.setdefault({number}, []).append(raw)",
                        "pos = npos",
                    ]
                else:
                    body = [
                        "n, pos = _rv(buf, pos)",
                        "npos = pos + n",
                        "if npos > end:",
                        "    raise _Trunc('string overruns buffer')",
                        "raw = bytes(buf[pos:npos])",
                        *check,
                        "stats.string_bytes_copied += n",
                        *clear,
                        f"_ws(arena, obj + {offset}, raw)",
                        *set_has,
                        "pos = npos",
                    ]
                branches.append((tag, f.name, body))
                continue

            width = _FIXED_WIDTH.get(kind)
            if width is not None:
                natural_tag = make_tag(
                    number, WireType.FIXED32 if width == 4 else WireType.FIXED64
                )
                ns[f"_dt{i}"] = _ELEM_DTYPE[kind]
                read = [
                    f"npos = pos + {width}",
                    "if npos > end:",
                    f"    raise _Trunc('fixed{width * 8} extends past end of buffer')",
                    "stats.fixed_fields += 1",
                ]
                if f.repeated:
                    body = read + [
                        f"pending.setdefault({number}, []).append("
                        f"_np.frombuffer(bytes(buf[pos:npos]), dtype=_dt{i})[0])",
                        "pos = npos",
                    ]
                else:
                    body = read + [
                        *clear,
                        f"space.write(obj + {offset}, bytes(buf[pos:npos]))",
                        *set_has,
                        "pos = npos",
                    ]
                branches.append((natural_tag, f.name, body))
                if f.repeated:
                    branches.append((make_tag(number, WireType.LENGTH_DELIMITED), f.name, [
                        "n, pos = _rv(buf, pos)",
                        "run_end = pos + n",
                        "if run_end > end:",
                        "    raise _Trunc('packed run overruns buffer')",
                        f"if n % {width}:",
                        "    raise _DE('packed fixed run not a multiple of element width')",
                        f"arr = _np.frombuffer(buf[pos:run_end], dtype=_dt{i})",
                        "stats.fixed_fields += len(arr)",
                        f"pending.setdefault({number}, []).extend(list(arr))",
                        "pos = run_end",
                    ]))
                continue

            # varint-carried kind
            natural_tag = make_tag(number, WireType.VARINT)
            ns[f"_pk{i}"] = _VARINT_PACK[kind]
            read = [
                "if pos >= end:",
                "    raise _Trunc('varint extends past end of buffer')",
                "start = pos",
                "b = buf[pos]",
                "if b < 0x80:",
                "    raw = b",
                "    pos += 1",
                "else:",
                "    raw, pos = _rv(buf, pos)",
                "stats.varints_decoded += 1",
                "stats.varint_bytes += pos - start",
            ]
            if f.repeated:
                body = read + [
                    f"pending.setdefault({number}, []).append({_ARENA_CONVERT_EXPR[kind]})",
                ]
            else:
                body = read + [
                    *clear,
                    f"space.write(obj + {offset}, _pk{i}({_ARENA_CONVERT_EXPR[kind]}))",
                    *set_has,
                ]
            branches.append((natural_tag, f.name, body))
            if f.repeated:
                branches.append((make_tag(number, WireType.LENGTH_DELIMITED), f.name, [
                    "n, pos = _rv(buf, pos)",
                    "run_end = pos + n",
                    "if run_end > end:",
                    "    raise _Trunc('packed run overruns buffer')",
                    "raw = _dpf(buf[pos:run_end])",
                    "stats.varints_decoded += len(raw)",
                    "stats.varint_bytes += n",
                    f"pending.setdefault({number}, []).extend({_ARENA_BULK_EXPR[kind]})",
                    "pos = run_end",
                ]))
        return branches

    def entry_source(self, index: int) -> tuple[str, dict]:
        """Build one entry's decode-function source and exec namespace."""
        from repro.proto.wire_format import decode_packed_varints_fast

        entry = self.deser.adt.entry(index)
        ns: dict = {
            "_rv": read_varint,
            "_dpf": decode_packed_varints_fast,
            "_np": np,
            "_one": np.uint64(1),
            "_cache": self,
            "_entry": entry,
            "_FULL": entry.full_name,
            "_unk": self._parse_unknown,
            "_mat": self.deser._materialize_repeated,
            "_fbn": entry.field_by_number,
            "_ws": self.deser._write_string,
            "_vu8": validate_utf8,
            "_Trunc": TruncatedMessageError,
            "_Wfe": WireFormatError,
            "_DE": DeserializeError,
            "_serr": struct.error,
            "stats": self.stats,
        }
        branches = self._field_branches(entry, ns)
        lines = [
            f"# generated arena decoder for {entry.full_name} (ADT entry {index})",
            "def _decode(obj, buf, pos, end, arena, depth):",
            "    space = arena.space",
            "    pending = {}",
            "    fname = None",
            "    try:",
            "        while pos < end:",
            "            fname = None",
            "            b = buf[pos]",
            "            if b < 0x80:",
            "                tag = b",
            "                pos += 1",
            "            else:",
            "                tag, pos = _rv(buf, pos)",
        ]
        kw = "if"
        for tag, fname, body in branches:
            lines.append(f"            {kw} tag == {tag}:  # {fname}")
            lines.append(f"                fname = {fname!r}")
            lines += ["                " + ln for ln in body]
            kw = "elif"
        if branches:
            lines.append("            else:")
            lines.append("                pos = _unk(_entry, buf, tag, pos, end)")
        else:
            lines.append("            pos = _unk(_entry, buf, tag, pos, end)")
        lines += [
            "    except (_Wfe, ValueError, _serr) as exc:",
            "        if fname is None:",
            "            raise",
            "        raise _DE(f'{_FULL}.{fname}: {exc}') from exc",
            "    if pos != end:",
            "        raise _DE(_FULL + ': overran submessage end')",
            "    if pending:",
            "        for number, values in pending.items():",
            "            _mat(_fbn(number), obj, values, arena)",
        ]
        return "\n".join(lines) + "\n", ns

    def _compile(self, index: int):
        import time as _time

        t0 = _time.perf_counter_ns()
        entry = self.deser.adt.entry(index)
        source, ns = self.entry_source(index)
        exec(compile(source, f"<gen_arena {entry.full_name}>", "exec"), ns)
        fn = ns["_decode"]
        self._decoders[index] = fn
        self._sources[index] = source
        PLAN_METRICS.gen_compiles += 1
        PLAN_METRICS.gen_source_bytes += len(source)
        PLAN_METRICS.gen_compile_ns += _time.perf_counter_ns() - t0
        return fn


def _make_packed_handler(f: AdtField, number: int, stats):
    """Bulk decode of a packed run, charging the same census as the
    interpretive ``_decode_packed``."""
    kind = f.kind
    width = _FIXED_WIDTH.get(kind)
    if width is not None:
        dtype = _ELEM_DTYPE[kind]

        def handler(obj, buf, pos, end, arena, depth, pending):
            n, pos = read_varint(buf, pos)
            run_end = pos + n
            if run_end > end:
                raise TruncatedMessageError("packed run overruns buffer")
            if n % width:
                raise DeserializeError("packed fixed run not a multiple of element width")
            arr = np.frombuffer(buf[pos:run_end], dtype=dtype)
            stats.fixed_fields += len(arr)
            pending.setdefault(number, []).extend(list(arr))
            return run_end

        return handler

    def handler(obj, buf, pos, end, arena, depth, pending):
        n, pos = read_varint(buf, pos)
        run_end = pos + n
        if run_end > end:
            raise TruncatedMessageError("packed run overruns buffer")
        raw = decode_packed_varints(buf[pos:run_end])
        stats.varints_decoded += len(raw)
        stats.varint_bytes += n
        if kind is FieldType.BOOL:
            values = list((raw != 0).astype("u1"))
        elif kind in (FieldType.SINT32, FieldType.SINT64):
            dec = (raw >> np.uint64(1)).astype(np.int64) ^ -(raw & np.uint64(1)).astype(np.int64)
            values = list(dec)
        elif kind in (FieldType.INT32, FieldType.ENUM):
            values = list(raw.astype(np.uint32).astype(np.int32))
        elif kind is FieldType.INT64:
            values = list(raw.astype(np.int64))
        elif kind is FieldType.UINT32:
            values = list(raw.astype(np.uint32))
        else:  # uint64
            values = list(raw)
        pending.setdefault(number, []).extend(values)
        return run_end

    return handler

