"""ADT-driven object access — the DPU's view of C++ message objects.

The host-side :class:`~repro.offload.materialize.CppMessageView` reads
objects through descriptors and layouts.  The DPU has neither — only the
:class:`~repro.offload.adt.Adt` — so this module provides the
descriptor-free equivalents:

* :class:`AdtMessageView` — lazy, zero-copy field access driven purely by
  ADT field entries (offsets, kinds, child indices);
* :func:`serialize_object` — proto3 serialization straight from object
  bytes, which is what the *response-serialization offload* uses: the
  host ships a C++ object (no host-side serialization), and the DPU walks
  it once, emitting wire bytes for the xRPC client (§III-A: "serialization
  can be offloaded with similar techniques").

Field emission order is ascending field number, matching the reference
serializer, so DPU-serialized bytes are byte-identical to host-serialized
bytes for the same logical value.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.abi import AbiError, StdLib
from repro.abi.cpp_types import REPEATED_HEADER, LibcxxString, LibstdcxxString
from repro.proto.descriptor import FieldType
from repro.proto.wire_format import WireType, append_varint, make_tag

from .adt import Adt, AdtField
from .arena_deserializer import HASBITS_OFFSET

__all__ = ["AdtMessageView", "serialize_object"]


_SCALAR_STRUCT = {
    FieldType.BOOL: struct.Struct("<?"),
    FieldType.INT32: struct.Struct("<i"),
    FieldType.SINT32: struct.Struct("<i"),
    FieldType.SFIXED32: struct.Struct("<i"),
    FieldType.ENUM: struct.Struct("<i"),
    FieldType.UINT32: struct.Struct("<I"),
    FieldType.FIXED32: struct.Struct("<I"),
    FieldType.INT64: struct.Struct("<q"),
    FieldType.SINT64: struct.Struct("<q"),
    FieldType.SFIXED64: struct.Struct("<q"),
    FieldType.UINT64: struct.Struct("<Q"),
    FieldType.FIXED64: struct.Struct("<Q"),
    FieldType.FLOAT: struct.Struct("<f"),
    FieldType.DOUBLE: struct.Struct("<d"),
}


class AdtMessageView:
    """Read-only, descriptor-free view of an object, from the ADT alone."""

    __slots__ = ("_adt", "_entry", "_index", "_space", "_addr", "_string_layout")

    def __init__(self, adt: Adt, index: int, space, addr: int, verify: bool = True) -> None:
        entry = adt.entry(index)
        if verify:
            vptr = space.read_u64(addr)
            if vptr != entry.vtable_addr:
                raise AbiError(
                    f"{entry.full_name} at {addr:#x}: vptr {vptr:#x} != "
                    f"vtable {entry.vtable_addr:#x}"
                )
        object.__setattr__(self, "_adt", adt)
        object.__setattr__(self, "_entry", entry)
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_space", space)
        object.__setattr__(self, "_addr", addr)
        object.__setattr__(
            self,
            "_string_layout",
            LibstdcxxString() if adt.stdlib is StdLib.LIBSTDCXX else LibcxxString(),
        )

    @property
    def address(self) -> int:
        return self._addr

    @property
    def type_name(self) -> str:
        return self._entry.full_name

    def has_bit(self, f: AdtField) -> bool:
        word = self._space.read_u32(self._addr + HASBITS_OFFSET + 4 * (f.has_bit // 32))
        return bool(word >> (f.has_bit % 32) & 1)

    def field(self, name: str) -> Any:
        for f in self._entry.fields:
            if f.name == name:
                return self._read_field(f)
        raise AttributeError(f"{self._entry.full_name} has no field {name!r}")

    def __getattr__(self, name: str) -> Any:
        return self.field(name)

    def fields(self) -> Iterator[AdtField]:
        return iter(self._entry.fields)

    # -- readers ---------------------------------------------------------------

    def _read_field(self, f: AdtField) -> Any:
        addr = self._addr + f.offset
        if f.repeated:
            return self._read_repeated(f, addr)
        if f.kind in (FieldType.STRING, FieldType.BYTES):
            raw = bytes(self._string_layout.read(self._space, addr))
            return raw.decode("utf-8") if f.kind is FieldType.STRING else raw
        if f.kind is FieldType.MESSAGE:
            ptr = self._space.read_u64(addr)
            if ptr == 0:
                return None
            return AdtMessageView(self._adt, f.child, self._space, ptr)
        codec = _SCALAR_STRUCT[f.kind]
        return codec.unpack(bytes(self._space.read(addr, codec.size)))[0]

    def _read_repeated(self, f: AdtField, addr: int) -> list:
        elems, count, _ = REPEATED_HEADER.read(self._space, addr)
        if count == 0:
            return []
        if f.kind is FieldType.MESSAGE:
            return [
                AdtMessageView(self._adt, f.child, self._space,
                               self._space.read_u64(elems + 8 * i))
                for i in range(count)
            ]
        if f.kind in (FieldType.STRING, FieldType.BYTES):
            sl = self._string_layout
            out = []
            for i in range(count):
                raw = bytes(sl.read(self._space, elems + sl.size * i))
                out.append(raw.decode("utf-8") if f.kind is FieldType.STRING else raw)
            return out
        codec = _SCALAR_STRUCT[f.kind]
        data = bytes(self._space.read(elems, codec.size * count))
        return [codec.unpack_from(data, i * codec.size)[0] for i in range(count)]

    def __repr__(self) -> str:
        return f"<AdtMessageView {self.type_name} @ {self._addr:#x}>"


# ---------------------------------------------------------------------------
# Serialization straight from object bytes (the offloaded response path)
# ---------------------------------------------------------------------------


def _zigzag(value: int, bits: int) -> int:
    return ((value << 1) ^ (value >> (bits - 1))) & ((1 << bits) - 1)


def _scalar_to_varint(kind: FieldType, value) -> int:
    if kind is FieldType.BOOL:
        return 1 if value else 0
    if kind is FieldType.SINT32:
        return _zigzag(value, 32)
    if kind is FieldType.SINT64:
        return _zigzag(value, 64)
    return value & ((1 << 64) - 1)


_WIRE_TYPE = {
    FieldType.DOUBLE: WireType.FIXED64,
    FieldType.FLOAT: WireType.FIXED32,
    FieldType.FIXED64: WireType.FIXED64,
    FieldType.SFIXED64: WireType.FIXED64,
    FieldType.FIXED32: WireType.FIXED32,
    FieldType.SFIXED32: WireType.FIXED32,
    FieldType.STRING: WireType.LENGTH_DELIMITED,
    FieldType.BYTES: WireType.LENGTH_DELIMITED,
    FieldType.MESSAGE: WireType.LENGTH_DELIMITED,
}

_FIXED_PACK = {
    FieldType.DOUBLE: struct.Struct("<d"),
    FieldType.FLOAT: struct.Struct("<f"),
    FieldType.FIXED64: struct.Struct("<Q"),
    FieldType.SFIXED64: struct.Struct("<q"),
    FieldType.FIXED32: struct.Struct("<I"),
    FieldType.SFIXED32: struct.Struct("<i"),
}


def _default_scalar(kind: FieldType):
    if kind in (FieldType.FLOAT, FieldType.DOUBLE):
        return 0.0
    if kind is FieldType.BOOL:
        return False
    return 0


def serialize_object(adt: Adt, index: int, space, addr: int) -> bytes:
    """Serialize an in-memory object to proto3 wire bytes.

    Byte-identical to serializing the equivalent dynamic Message: fields
    ascend by number; proto3 default-valued scalars are elided (presence
    comes from the has-bits AND a default-value check, matching the
    reference serializer's semantics); packed encoding for repeated
    numerics.
    """
    view = AdtMessageView(adt, index, space, addr)
    out = bytearray()
    for f in sorted(view._entry.fields, key=lambda f: f.number):
        _emit_field(adt, view, f, out)
    return bytes(out)


def _emit_field(adt: Adt, view: AdtMessageView, f: AdtField, out: bytearray) -> None:
    kind = f.kind
    if f.repeated:
        values = view._read_field(f)
        if not values:
            return
        if kind is FieldType.MESSAGE:
            tag = make_tag(f.number, WireType.LENGTH_DELIMITED)
            for child in values:
                sub = serialize_object(adt, f.child, child._space, child._addr)
                append_varint(out, tag)
                append_varint(out, len(sub))
                out += sub
        elif kind in (FieldType.STRING, FieldType.BYTES):
            tag = make_tag(f.number, WireType.LENGTH_DELIMITED)
            for v in values:
                data = v.encode("utf-8") if isinstance(v, str) else v
                append_varint(out, tag)
                append_varint(out, len(data))
                out += data
        else:
            packed = bytearray()
            for v in values:
                _emit_scalar_payload(kind, v, packed)
            append_varint(out, make_tag(f.number, WireType.LENGTH_DELIMITED))
            append_varint(out, len(packed))
            out += packed
        return

    if kind is FieldType.MESSAGE:
        ptr = view._space.read_u64(view._addr + f.offset)
        if ptr == 0:
            return
        sub = serialize_object(adt, f.child, view._space, ptr)
        append_varint(out, make_tag(f.number, WireType.LENGTH_DELIMITED))
        append_varint(out, len(sub))
        out += sub
        return

    value = view._read_field(f)
    if kind in (FieldType.STRING, FieldType.BYTES):
        data = value.encode("utf-8") if isinstance(value, str) else value
        if not data and not view.has_bit(f):
            return
        if not data:
            return  # proto3: empty string is the default, elided
        append_varint(out, make_tag(f.number, WireType.LENGTH_DELIMITED))
        append_varint(out, len(data))
        out += data
        return

    if value == _default_scalar(kind):
        return  # proto3 zero-default elision
    wire_type = _WIRE_TYPE.get(kind, WireType.VARINT)
    append_varint(out, make_tag(f.number, wire_type))
    _emit_scalar_payload(kind, value, out)


def _emit_scalar_payload(kind: FieldType, value, out: bytearray) -> None:
    codec = _FIXED_PACK.get(kind)
    if codec is not None:
        out += codec.pack(value)
    else:
        append_varint(out, _scalar_to_varint(kind, value))
