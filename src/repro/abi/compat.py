"""Binary-compatibility checking between two programs' ABIs.

Implements the paper's compatibility definition (§V-A): a type ``T`` is
binary-compatible between two programs iff, recursively for every field
``f``, ``sizeof(T)``, ``alignof(T)`` and ``offsetof(T, f)`` evaluate to the
same values in both.  The offload architecture *assumes* compatibility; the
checker turns the assumption into a verified precondition exchanged at
ADT-transfer time, so an incompatible pairing (say, host on libstdc++ and
a stale DPU build expecting libc++) fails at startup instead of corrupting
objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proto.descriptor import MessageDescriptor

from .cpp_types import AbiConfig
from .layout import LayoutCache

__all__ = ["Incompatibility", "CompatReport", "check_compatibility"]


@dataclass(frozen=True)
class Incompatibility:
    """One detected layout divergence."""

    type_name: str
    kind: str  # "sizeof" | "alignof" | "offsetof" | "flags" | "string-layout"
    detail: str

    def __str__(self) -> str:
        return f"{self.type_name}: {self.kind} mismatch ({self.detail})"


@dataclass
class CompatReport:
    """Result of a compatibility check over a message tree."""

    client_abi: AbiConfig
    server_abi: AbiConfig
    incompatibilities: list[Incompatibility]
    types_checked: int

    @property
    def compatible(self) -> bool:
        return not self.incompatibilities

    def raise_if_incompatible(self) -> None:
        if not self.compatible:
            lines = "\n  ".join(str(i) for i in self.incompatibilities)
            raise RuntimeError(
                f"ABIs are not binary-compatible "
                f"({self.client_abi.describe()} vs {self.server_abi.describe()}):\n  {lines}"
            )


def check_compatibility(
    root: MessageDescriptor, client_abi: AbiConfig, server_abi: AbiConfig
) -> CompatReport:
    """Compare the layouts of ``root`` and all reachable message types
    under the two ABIs; returns a :class:`CompatReport`."""
    problems: list[Incompatibility] = []

    if client_abi.abi_flags != server_abi.abi_flags:
        problems.append(
            Incompatibility(
                "<build>",
                "flags",
                f"{sorted(client_abi.abi_flags)} vs {sorted(server_abi.abi_flags)}",
            )
        )

    client_cache = LayoutCache(client_abi)
    server_cache = LayoutCache(server_abi)
    messages = root.transitive_messages()
    for desc in messages:
        cl = client_cache.layout(desc)
        sl = server_cache.layout(desc)
        if cl.sizeof != sl.sizeof:
            problems.append(
                Incompatibility(desc.full_name, "sizeof", f"{cl.sizeof} vs {sl.sizeof}")
            )
        if cl.alignof != sl.alignof:
            problems.append(
                Incompatibility(desc.full_name, "alignof", f"{cl.alignof} vs {sl.alignof}")
            )
        for cslot, sslot in zip(cl.slots, sl.slots):
            if cslot.offset != sslot.offset or cslot.size != sslot.size:
                problems.append(
                    Incompatibility(
                        desc.full_name,
                        "offsetof",
                        f"{cslot.field.name}: offset {cslot.offset}/{sslot.offset}, "
                        f"size {cslot.size}/{sslot.size}",
                    )
                )
    # std::string internals must match even if overall sizes happened to
    # coincide (the SSO discriminators differ between implementations).
    if client_abi.stdlib != server_abi.stdlib:
        problems.append(
            Incompatibility(
                "std::string",
                "string-layout",
                f"{client_abi.stdlib.value} vs {server_abi.stdlib.value}",
            )
        )
    return CompatReport(client_abi, server_abi, problems, len(messages))
