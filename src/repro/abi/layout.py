"""Itanium-style object layout for generated message classes.

Computes, for each message descriptor under a given :class:`AbiConfig`, the
byte-exact layout of the corresponding C++ class: ``sizeof``, ``alignof``
and ``offsetof`` of every member — the three quantities the paper's
binary-compatibility definition is stated in (§V-A).

The modeled class mirrors what protoc-generated C++ code (and the paper's
custom deserializer) works with::

    class Msg : public MessageLite {        // -> vptr at offset 0
        uint32_t _has_bits_[k];             // field-presence bitfield
        uint32_t _cached_size_;             // serialized-size cache
        <members in field-number order>     // the user-visible fields
    };

Member representations:

====================  =========================================
proto field           C++ member
====================  =========================================
bool                  ``bool`` (1 byte)
(s/u)int32, enum,
fixed32, float        4-byte scalar
(s/u)int64,
fixed64, double       8-byte scalar
string / bytes        ``std::string`` (layout per stdlib)
message               pointer to child object (arena-allocated)
repeated T            16-byte pointer/size/capacity header
====================  =========================================

Layout follows the Itanium rules for standard-layout-ish classes: members
are placed in order at the next offset aligned for their type; the class
alignment is the max member alignment (≥ 8 because of the vptr); the class
size is rounded up to its alignment.  Both gcc and clang follow these rules
on x86-64 and AArch64, which is the basis of the paper's cross-ISA
compatibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proto.descriptor import FieldDescriptor, FieldType, MessageDescriptor

from .cpp_types import (
    POINTER_SIZE,
    REPEATED_HEADER,
    AbiConfig,
    AbiError,
    PrimitiveType,
    PRIMITIVES,
    StringLayout,
    string_layout_for,
)

__all__ = ["FieldSlot", "MessageLayout", "LayoutCache", "member_primitive"]


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


# proto scalar type -> in-object primitive representation
_MEMBER_PRIMITIVE: dict[FieldType, str] = {
    FieldType.BOOL: "bool",
    FieldType.INT32: "int32",
    FieldType.SINT32: "int32",
    FieldType.SFIXED32: "int32",
    FieldType.ENUM: "int32",
    FieldType.UINT32: "uint32",
    FieldType.FIXED32: "uint32",
    FieldType.INT64: "int64",
    FieldType.SINT64: "int64",
    FieldType.SFIXED64: "int64",
    FieldType.UINT64: "uint64",
    FieldType.FIXED64: "uint64",
    FieldType.FLOAT: "float",
    FieldType.DOUBLE: "double",
}


def member_primitive(fd: FieldDescriptor) -> PrimitiveType:
    """The primitive representation of one element of field ``fd``."""
    try:
        return PRIMITIVES[_MEMBER_PRIMITIVE[fd.type]]
    except KeyError:
        raise AbiError(f"field {fd.name}: {fd.type.value} has no primitive member") from None


@dataclass(frozen=True)
class FieldSlot:
    """Placement of one field inside the object."""

    field: FieldDescriptor
    offset: int
    size: int
    align: int
    #: index of this field's presence bit in ``_has_bits_``
    has_bit: int

    @property
    def kind(self) -> str:
        if self.field.is_repeated:
            return "repeated"
        if self.field.type in (FieldType.STRING, FieldType.BYTES):
            return "string"
        if self.field.type is FieldType.MESSAGE:
            return "message"
        return "scalar"


class MessageLayout:
    """The computed layout of one message class under one ABI."""

    VPTR_OFFSET = 0

    def __init__(self, descriptor: MessageDescriptor, abi: AbiConfig) -> None:
        self.descriptor = descriptor
        self.abi = abi
        self.string_layout: StringLayout = string_layout_for(abi)

        fields = descriptor.fields_sorted()
        self.has_bit_words = max(1, (len(fields) + 31) // 32)

        offset = POINTER_SIZE  # vptr
        self.hasbits_offset = offset
        offset += 4 * self.has_bit_words
        self.cached_size_offset = offset
        offset += 4

        max_align = POINTER_SIZE
        slots: list[FieldSlot] = []
        for has_bit, fd in enumerate(fields):
            size, align = self._member_size_align(fd)
            offset = _align_up(offset, align)
            slots.append(FieldSlot(fd, offset, size, align, has_bit))
            offset += size
            max_align = max(max_align, align)

        self.alignof = max_align
        self.sizeof = _align_up(offset, max_align)
        self._slots = slots
        self._by_name = {s.field.name: s for s in slots}
        self._by_number = {s.field.number: s for s in slots}

    def _member_size_align(self, fd: FieldDescriptor) -> tuple[int, int]:
        if fd.is_repeated:
            return REPEATED_HEADER.size, REPEATED_HEADER.align
        if fd.type in (FieldType.STRING, FieldType.BYTES):
            return self.string_layout.size, self.string_layout.align
        if fd.type is FieldType.MESSAGE:
            return POINTER_SIZE, POINTER_SIZE
        prim = member_primitive(fd)
        return prim.size, prim.align

    # -- queries -------------------------------------------------------------

    @property
    def slots(self) -> list[FieldSlot]:
        return list(self._slots)

    def slot(self, name: str) -> FieldSlot:
        try:
            return self._by_name[name]
        except KeyError:
            raise AbiError(f"{self.descriptor.full_name}: no field {name!r}") from None

    def slot_by_number(self, number: int) -> FieldSlot | None:
        return self._by_number.get(number)

    def offsetof(self, name: str) -> int:
        return self.slot(name).offset

    # -- has-bits ------------------------------------------------------------

    def set_has_bit(self, space, obj_addr: int, has_bit: int) -> None:
        word_addr = obj_addr + self.hasbits_offset + 4 * (has_bit // 32)
        word = space.read_u32(word_addr)
        space.write_u32(word_addr, word | (1 << (has_bit % 32)))

    def get_has_bit(self, space, obj_addr: int, has_bit: int) -> bool:
        word_addr = obj_addr + self.hasbits_offset + 4 * (has_bit // 32)
        return bool(space.read_u32(word_addr) >> (has_bit % 32) & 1)

    # -- vptr ----------------------------------------------------------------

    def write_vptr(self, space, obj_addr: int, vtable_addr: int) -> None:
        space.write_u64(obj_addr + self.VPTR_OFFSET, vtable_addr)

    def read_vptr(self, space, obj_addr: int) -> int:
        return space.read_u64(obj_addr + self.VPTR_OFFSET)

    def __repr__(self) -> str:
        return (
            f"MessageLayout({self.descriptor.full_name}, sizeof={self.sizeof}, "
            f"alignof={self.alignof}, {len(self._slots)} fields)"
        )


class LayoutCache:
    """Computes and memoizes layouts for one ABI configuration."""

    def __init__(self, abi: AbiConfig) -> None:
        self.abi = abi
        self._cache: dict[str, MessageLayout] = {}

    def layout(self, descriptor: MessageDescriptor) -> MessageLayout:
        hit = self._cache.get(descriptor.full_name)
        if hit is None:
            hit = MessageLayout(descriptor, self.abi)
            self._cache[descriptor.full_name] = hit
        return hit

    def layouts_for_tree(self, root: MessageDescriptor) -> dict[str, MessageLayout]:
        """Layouts for ``root`` and every transitively reachable message."""
        return {m.full_name: self.layout(m) for m in root.transitive_messages()}
