"""C++ ABI model: object layout, std::string internals, compatibility.

Models everything the DPU must know about the host's binary interface to
construct objects the host can use directly (paper §V-A..C): Itanium-style
class layout (sizeof / alignof / offsetof, vptr), libstdc++ and libc++
``std::string`` layouts with small-string optimization, repeated-field
headers, and the recursive binary-compatibility check.
"""

from .compat import CompatReport, Incompatibility, check_compatibility
from .cpp_types import (
    POINTER_SIZE,
    PRIMITIVES,
    REPEATED_HEADER,
    AbiConfig,
    AbiError,
    Arch,
    Compiler,
    LibcxxString,
    LibstdcxxString,
    PrimitiveType,
    RepeatedHeader,
    StdLib,
    StringLayout,
    string_layout_for,
)
from .layout import FieldSlot, LayoutCache, MessageLayout, member_primitive

__all__ = [
    "CompatReport",
    "Incompatibility",
    "check_compatibility",
    "POINTER_SIZE",
    "PRIMITIVES",
    "REPEATED_HEADER",
    "AbiConfig",
    "AbiError",
    "Arch",
    "Compiler",
    "LibcxxString",
    "LibstdcxxString",
    "PrimitiveType",
    "RepeatedHeader",
    "StdLib",
    "StringLayout",
    "string_layout_for",
    "FieldSlot",
    "LayoutCache",
    "MessageLayout",
    "member_primitive",
]
