"""C++ type and ABI configuration model.

The offloaded deserializer writes bytes that a C++ program on the host will
interpret as live objects, so the DPU must know — exactly — the host's
sizes, alignments, field offsets and standard-library internals (paper
§V-A).  This module models those:

* :class:`AbiConfig` — the (architecture, compiler, standard library)
  triple the binary-compatibility argument quantifies over;
* the primitive type table (Itanium/LP64 sizes and alignments, identical on
  x86-64 and AArch64, which is *why* the offload is possible);
* the two ``std::string`` implementations the paper discusses (Figure 6):
  libstdc++ (32 bytes, pointer/size/union{sso[16], capacity}) and libc++
  (24 bytes, SSO flag in the low bit of the first byte), both with
  small-string optimization;
* the repeated-field headers (pointer/size/capacity) used for
  ``repeated`` members.

Byte order is little-endian throughout (§IV-A).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

__all__ = [
    "AbiError",
    "Arch",
    "Compiler",
    "StdLib",
    "AbiConfig",
    "PrimitiveType",
    "PRIMITIVES",
    "StringLayout",
    "LibstdcxxString",
    "LibcxxString",
    "string_layout_for",
    "RepeatedHeader",
    "POINTER_SIZE",
]

POINTER_SIZE = 8  # LP64 on both x86-64 and AArch64


class AbiError(RuntimeError):
    """Raised on ABI-model violations (bad layouts, invalid object bytes)."""


class Arch(enum.Enum):
    X86_64 = "x86_64"
    AARCH64 = "aarch64"


class Compiler(enum.Enum):
    GCC = "gcc"
    CLANG = "clang"


class StdLib(enum.Enum):
    LIBSTDCXX = "libstdc++"
    LIBCXX = "libc++"


@dataclass(frozen=True)
class AbiConfig:
    """One program's ABI-relevant build configuration.

    The paper's deployment pairs an AArch64 client (DPU) with an x86-64
    host, both on the Itanium C++ ABI with LP64 data layout, gcc or clang,
    and the *same* standard library — that combination is binary-compatible
    for message classes.  The checker in :mod:`repro.abi.compat` verifies
    compatibility instead of assuming it.
    """

    arch: Arch = Arch.X86_64
    compiler: Compiler = Compiler.GCC
    stdlib: StdLib = StdLib.LIBSTDCXX
    #: Compiler flags that alter layout (e.g. -fpack-struct, -m32) would
    #: break compatibility; we model them as an opaque frozenset the
    #: checker compares for equality (paper: "Compiler flags that affect
    #: the ABI should be the same").
    abi_flags: frozenset[str] = field(default_factory=frozenset)

    def describe(self) -> str:
        flags = " ".join(sorted(self.abi_flags)) or "-"
        return f"{self.arch.value}/{self.compiler.value}/{self.stdlib.value} [{flags}]"


@dataclass(frozen=True)
class PrimitiveType:
    """A scalar C++ type with its LP64 size/alignment and struct codec."""

    name: str
    size: int
    align: int
    fmt: str  # struct format (little-endian applied by callers)

    def pack(self, value) -> bytes:
        return struct.pack("<" + self.fmt, value)

    def unpack(self, data) -> object:
        return struct.unpack("<" + self.fmt, bytes(data))[0]


PRIMITIVES: dict[str, PrimitiveType] = {
    t.name: t
    for t in [
        PrimitiveType("bool", 1, 1, "?"),
        PrimitiveType("int32", 4, 4, "i"),
        PrimitiveType("uint32", 4, 4, "I"),
        PrimitiveType("int64", 8, 8, "q"),
        PrimitiveType("uint64", 8, 8, "Q"),
        PrimitiveType("float", 4, 4, "f"),
        PrimitiveType("double", 8, 8, "d"),
        PrimitiveType("pointer", 8, 8, "Q"),
    ]
}


# ---------------------------------------------------------------------------
# std::string layouts
# ---------------------------------------------------------------------------


class StringLayout:
    """Abstract ``std::string`` layout: craft and inspect instances.

    Subclasses implement the two real-world layouts.  ``write`` crafts a
    string object at ``addr`` whose character data (when not inlined by
    SSO) lives at ``data_addr``; ``read`` does the inverse, resolving the
    data pointer through the provided address space — exactly what host
    code dereferencing the string does.
    """

    size: int
    align: int = 8
    sso_capacity: int

    def write(self, space, addr: int, data: bytes, data_addr: int | None) -> None:
        raise NotImplementedError

    def read(self, space, addr: int) -> bytes:
        raise NotImplementedError

    def is_sso(self, space, addr: int) -> bool:
        raise NotImplementedError

    def heap_bytes_needed(self, length: int) -> int:
        """Out-of-line bytes the deserializer must arena-allocate for a
        string of ``length`` bytes (0 when SSO applies).  Includes the
        terminating NUL real std::string maintains."""
        return 0 if length <= self.sso_capacity else length + 1


class LibstdcxxString(StringLayout):
    """libstdc++ ``std::string`` (paper Figure 6)::

        char*  data;        // offset 0
        size_t size;        // offset 8
        union {             // offset 16
            char   sso[16]; // inline buffer, capacity 15 + NUL
            size_t capacity;
        };

    SSO discriminator: ``data == &sso`` (pointer equality with the
    object's own inline buffer).
    """

    size = 32
    sso_capacity = 15
    _SSO_OFF = 16

    def write(self, space, addr: int, data: bytes, data_addr: int | None) -> None:
        n = len(data)
        if n <= self.sso_capacity:
            sso_addr = addr + self._SSO_OFF
            space.write_u64(addr, sso_addr)
            space.write_u64(addr + 8, n)
            space.write(sso_addr, data + b"\x00" * (16 - n))
        else:
            if data_addr is None:
                raise AbiError("long string requires out-of-line data address")
            space.write(data_addr, data + b"\x00")
            space.write_u64(addr, data_addr)
            space.write_u64(addr + 8, n)
            space.write_u64(addr + self._SSO_OFF, n)  # capacity == size
            space.write_u64(addr + self._SSO_OFF + 8, 0)

    def is_sso(self, space, addr: int) -> bool:
        return space.read_u64(addr) == addr + self._SSO_OFF

    def read(self, space, addr: int) -> bytes:
        data_ptr = space.read_u64(addr)
        n = space.read_u64(addr + 8)
        if n == 0:
            # Zero-length reads never dereference the data pointer.  This
            # matters across sides: an unset field's pointer references the
            # *remote* default instance's SSO buffer, valid there but not
            # mapped here.
            return b""
        if self.is_sso(space, addr):
            if n > self.sso_capacity:
                raise AbiError(f"SSO string claims size {n} > {self.sso_capacity}")
            return space.read(addr + self._SSO_OFF, n)
        # Out-of-line: dereference through the (shared) address space —
        # this is the read a host-side field access performs.
        return space.read(data_ptr, n)


class LibcxxString(StringLayout):
    """libc++ ``std::string`` (little-endian, 64-bit)::

        long form  (24 bytes): size_t cap|1;  size_t size;  char* data;
        short form (24 bytes): uint8 size<<1; char sso[23];

    The discriminator is the low bit of byte 0 (the paper: "an SSO flag in
    the first bit of the capacity field"): 1 → long form, 0 → short form.
    """

    size = 24
    sso_capacity = 22

    def write(self, space, addr: int, data: bytes, data_addr: int | None) -> None:
        n = len(data)
        if n <= self.sso_capacity:
            space.write(addr, bytes([n << 1]) + data + b"\x00" * (23 - n))
        else:
            if data_addr is None:
                raise AbiError("long string requires out-of-line data address")
            space.write(data_addr, data + b"\x00")
            cap = (n + 1) | 1  # stored capacity with long-form flag
            space.write_u64(addr, cap)
            space.write_u64(addr + 8, n)
            space.write_u64(addr + 16, data_addr)

    def is_sso(self, space, addr: int) -> bool:
        return (space.read(addr, 1)[0] & 1) == 0

    def read(self, space, addr: int) -> bytes:
        if self.is_sso(space, addr):
            n = space.read(addr, 1)[0] >> 1
            if n > self.sso_capacity:
                raise AbiError(f"SSO string claims size {n} > {self.sso_capacity}")
            return space.read(addr + 1, n)
        n = space.read_u64(addr + 8)
        if n == 0:
            return b""
        data_ptr = space.read_u64(addr + 16)
        return space.read(data_ptr, n)


_STRING_LAYOUTS = {
    StdLib.LIBSTDCXX: LibstdcxxString(),
    StdLib.LIBCXX: LibcxxString(),
}


def string_layout_for(abi: AbiConfig) -> StringLayout:
    """The ``std::string`` layout the given program uses.

    Which standard library the *host* runs cannot be inferred by the DPU —
    it is transmitted explicitly as part of the ADT (paper §V-C), which is
    why this is a function of the config rather than a global.
    """
    return _STRING_LAYOUTS[abi.stdlib]


@dataclass(frozen=True)
class RepeatedHeader:
    """In-object header of a repeated field::

        T*       elements;  // offset 0, arena-allocated element storage
        uint32_t size;      // offset 8
        uint32_t capacity;  // offset 12

    Element storage is a dense array for scalar element types and an array
    of pointers for string/message element types (RepeatedPtrField analog).
    """

    size: int = 16
    align: int = 8

    def write(self, space, addr: int, elements_addr: int, count: int) -> None:
        space.write_u64(addr, elements_addr)
        space.write_u32(addr + 8, count)
        space.write_u32(addr + 12, count)

    def read(self, space, addr: int) -> tuple[int, int, int]:
        """Returns (elements_addr, size, capacity)."""
        return (
            space.read_u64(addr),
            space.read_u32(addr + 8),
            space.read_u32(addr + 12),
        )


REPEATED_HEADER = RepeatedHeader()
