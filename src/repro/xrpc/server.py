"""The baseline (non-offloaded) xRPC server.

This is the traditional deployment the paper compares against: the host
terminates client connections itself and its CPU performs framing,
**protobuf deserialization**, business-logic dispatch, and response
serialization.  The deserialization census is recorded so the datapath
benchmarks can charge the host CPU for exactly the work the DPU absorbs
in the offloaded configuration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.proto import Message, MessageFactory, WireFormatError, parse, prepare_emit
from repro.proto.descriptor import ServiceDescriptor
from repro.proto.fixed_wire import (
    WIRE_FIXED,
    get_fixed_layout,
    negotiation_hash,
)
from repro.runtime.overload import deadline_expired, now_us

from .framing import (
    FrameDecoder,
    FrameType,
    StatusCode,
    encode_overload_detail,
    encode_response,
    encode_setup_ack,
    response_frame_size,
    write_response_header,
)
from .service import MethodBinding, build_dispatch_table
from .transport import Listener, Network, SimSocket

__all__ = ["XrpcServer", "ServerStats"]


@dataclass
class ServerStats:
    requests: int = 0
    responses: int = 0
    errors: int = 0
    request_bytes: int = 0
    response_bytes: int = 0


@dataclass
class _Connection:
    socket: SimSocket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)


class XrpcServer:
    """Single-threaded, poll-driven unary-RPC server."""

    def __init__(
        self,
        network: Network,
        address: str,
        factory: MessageFactory,
        decode_mode: str | None = None,
        encode_mode: str | None = None,
        layout_salt: str = "",
    ) -> None:
        self.address = address
        self.listener: Listener = network.listen(address)
        self.factory = factory
        #: Request-deserialization path (``ProtocolConfig.decode_mode``):
        #: ``"plan"``/``"generated"``/``"interpretive"`` force that path;
        #: ``None`` follows the process-wide default
        #: (see repro.proto.set_decode_mode).
        self.decode_mode = decode_mode
        #: Perturbs this server's fixed-layout negotiation hash; any
        #: non-empty value makes every SETUP offer mismatch (the fault
        #: campaign's forced-fallback knob, docs/FAULTS.md).
        self.layout_salt = layout_salt
        #: WIRE_FIXED negotiations answered (match, mismatch) — observability
        self.setup_matches = 0
        self.setup_mismatches = 0
        #: Response-serialization path (``ProtocolConfig.encode_mode``),
        #: same convention (see repro.proto.set_encode_mode).
        self.encode_mode = encode_mode
        self._methods: dict[str, MethodBinding] = {}
        self._connections: list[_Connection] = []
        self.stats = ServerStats()
        #: AdmissionController (repro.runtime.overload) — None admits
        #: everything with zero overhead (docs/OVERLOAD.md)
        self.admission = None
        #: requests dropped expired-on-arrival, before any decode work
        self.deadline_expired = {"dispatch": 0}
        # Two priority lanes of decoded-but-unserved requests:
        # (conn, frame, arrival_us).  The latency lane always drains
        # first; with budget=None both drain fully every pass, so the
        # lanes only reorder under an explicit per-pass budget.
        self._lanes = (deque(), deque())
        #: StageRecorder (repro.obs) — None keeps every hook free.
        self.trace = None

    def add_service(self, service: ServiceDescriptor, servicer: object) -> None:
        """Register a servicer (the generated-code
        ``add_XServicer_to_server`` analog)."""
        table = build_dispatch_table(service, servicer)
        overlap = table.keys() & self._methods.keys()
        if overlap:
            raise ValueError(f"methods already registered: {sorted(overlap)}")
        self._methods.update(table)

    # -- event loop -----------------------------------------------------------

    def poll(self) -> int:
        """Deprecation shim for the historical name; the server is a
        :class:`~repro.runtime.pollable.Pollable` driven via
        :meth:`progress`."""
        return self.progress()

    def progress(self, budget: int | None = None) -> int:
        """Accept connections and serve buffered requests; returns the
        number of requests handled this pass.  Registerable with a
        :class:`~repro.runtime.engine.ProgressEngine`; ``budget`` caps
        the requests *served* in one pass (overload drops and sheds are
        cheap and never charged against it) — unserved requests stay in
        their priority lane for the next pass."""
        while True:
            sock = self.listener.accept()
            if sock is None:
                break
            self._connections.append(_Connection(sock))
        for conn in self._connections:
            data = conn.socket.recv(1 << 20)
            if data:
                conn.decoder.feed(data)
            for frame in conn.decoder.frames():
                if frame.frame_type is FrameType.SETUP:
                    self._answer_setup(conn, frame.method)
                elif frame.frame_type is FrameType.REQUEST:
                    lane = frame.deadline_word & 1
                    stamp = (
                        now_us()
                        if self.admission is not None or frame.deadline_word
                        else 0
                    )
                    self._lanes[lane].append((conn, frame, stamp))
        handled = 0
        for lane, queue in enumerate(self._lanes):
            while queue and (budget is None or handled < budget):
                conn, frame, arrival = queue.popleft()
                if conn.socket.eof():
                    continue  # client gone; a reply would be dropped anyway
                if self._drop_or_shed(conn, frame, lane, arrival):
                    continue
                handled += 1
                self._serve(
                    conn, frame.call_id, frame.method, frame.message,
                    frame.wire_mode,
                )
        self._connections = [c for c in self._connections if not c.socket.eof()]
        return handled

    def _drop_or_shed(self, conn: _Connection, frame, lane: int,
                      arrival: int) -> bool:
        """Overload checks ahead of any decode work: expired-on-arrival
        requests are dropped, then the admission controller may shed.
        Returns True when the request was answered without serving."""
        word = frame.deadline_word
        if word and deadline_expired(word):
            self.deadline_expired["dispatch"] += 1
            if self.trace is not None:
                self.trace.instant("deadline_expired", stage="dispatch",
                                   call_id=frame.call_id)
            self._respond(conn, frame.call_id, StatusCode.DEADLINE_EXCEEDED,
                          encode_overload_detail("dispatch"))
            return True
        if self.admission is None:
            return False
        now = now_us()
        self.admission.note_sojourn(now - arrival, now)
        depth = 1 + sum(len(q) for q in self._lanes)
        decision = self.admission.decide(lane, depth, now)
        if decision.admit:
            return False
        if self.trace is not None:
            self.trace.instant("shed", lane=lane, call_id=frame.call_id,
                               reason=decision.reason)
        self._respond(
            conn, frame.call_id, StatusCode.RESOURCE_EXHAUSTED,
            encode_overload_detail("dispatch", decision.retry_after_ticks),
        )
        return True

    def _answer_setup(self, conn: _Connection, offered_hash: str) -> None:
        """WIRE_FIXED negotiation: compare the client's layout hash with
        our own over every registered request/response type.  Stateless —
        the answer only informs the *client*; each frame carries its wire
        mode, so the server never needs per-connection mode state."""
        mine = negotiation_hash(self._registered_types(), self.layout_salt)
        if offered_hash == mine:
            self.setup_matches += 1
            conn.socket.send(encode_setup_ack(StatusCode.OK))
        else:
            self.setup_mismatches += 1
            conn.socket.send(encode_setup_ack(StatusCode.INVALID_ARGUMENT))
        if self.trace is not None:
            self.trace.instant("wire_fixed_setup", match=offered_hash == mine)

    def _registered_types(self) -> list:
        seen: dict[str, object] = {}
        for binding in self._methods.values():
            for desc in (binding.method.input_type, binding.method.output_type):
                seen.setdefault(desc.full_name, desc)
        return [seen[k] for k in sorted(seen)]

    def _serve(
        self, conn: _Connection, call_id: int, method: str, payload: bytes,
        wire_mode: int = 0,
    ) -> None:
        self.stats.requests += 1
        self.stats.request_bytes += len(payload)
        trace = self.trace
        ctx = None
        if trace is not None:
            ctx = trace.context(method=method, call_id=call_id)
            ctx.tid = ("xrpc-srv", call_id)
            trace.event(ctx, "ingress", bytes=len(payload))
        binding = self._methods.get(method)
        if binding is None:
            self._respond(conn, call_id, StatusCode.UNIMPLEMENTED, b"")
            return
        request_cls = self.factory.get_class(binding.method.input_type)
        fixed = wire_mode == WIRE_FIXED
        mode = "fixed" if fixed else (self.decode_mode or "default")

        def _parse_request():
            if fixed:
                layout = get_fixed_layout(binding.method.input_type, self.factory)
                if layout is None:
                    raise WireFormatError(
                        f"{binding.method.input_type.full_name} cannot ride fixed wire"
                    )
                return layout.parse(request_cls, payload)
            return parse(request_cls, payload, mode=self.decode_mode)

        try:
            # The host-CPU deserialization the offload eliminates:
            if trace is not None:
                t0 = trace.now()
                request = _parse_request()
                trace.event(ctx, "deserialize", ts=t0, dur=trace.now() - t0,
                            bytes=len(payload), mode=mode)
            else:
                request = _parse_request()
        except WireFormatError:
            self._respond(conn, call_id, StatusCode.INVALID_ARGUMENT, b"")
            return
        try:
            if trace is not None:
                t0 = trace.now()
                response = binding.handler(request, None)
                trace.event(ctx, "dispatch", ts=t0, dur=trace.now() - t0,
                            method=method)
            else:
                response = binding.handler(request, None)
        except Exception:  # noqa: BLE001 — servicer faults become INTERNAL
            self._respond(conn, call_id, StatusCode.INTERNAL, b"")
            return
        if not isinstance(response, Message) or (
            response.DESCRIPTOR.full_name != binding.method.output_type.full_name
        ):
            self._respond(conn, call_id, StatusCode.INTERNAL, b"")
            return
        self._respond_message(conn, call_id, response, fixed)
        if trace is not None:
            trace.event(ctx, "respond", status=int(StatusCode.OK))

    def _respond_message(
        self, conn: _Connection, call_id: int, response: Message,
        request_was_fixed: bool = False,
    ) -> None:
        """OK response: size the message, build the frame in one buffer,
        emit the payload in place after the header (zero intermediate
        full-payload ``bytes``).

        A request that arrived on fixed wire gets a fixed-wire response
        when the response type (and this instance) supports it — the
        client negotiated the layout, so no per-connection state is
        needed to answer in kind."""
        sized = None
        wire_mode = 0
        if request_was_fixed:
            layout = get_fixed_layout(response.DESCRIPTOR, self.factory)
            if layout is not None:
                sized = layout.measure(response)
                if sized is not None:
                    wire_mode = WIRE_FIXED
        if sized is None:
            sized = prepare_emit(response, mode=self.encode_mode)
        self.stats.responses += 1
        self.stats.response_bytes += sized.size
        frame = bytearray(response_frame_size(sized.size))
        payload_at = write_response_header(
            frame, call_id, StatusCode.OK, sized.size, wire_mode
        )
        sized.emit_into(frame, payload_at)
        conn.socket.send(frame)

    def _respond(self, conn: _Connection, call_id: int, status: int, message: bytes) -> None:
        if status == StatusCode.OK:
            self.stats.responses += 1
        else:
            self.stats.errors += 1
        self.stats.response_bytes += len(message)
        conn.socket.send(encode_response(call_id, status, message))
