"""xRPC client channel.

The client side of the xRPC substrate: frames unary requests, matches
responses to calls by call id, and fires continuations.  From the xRPC
client's perspective nothing changes when the server moves to the DPU —
only the target address does (§III-A: "The only configuration change is
to modify the xRPC server address").
"""

from __future__ import annotations

import itertools
import random
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.proto import Message, parse, prepare_emit
from repro.proto.fixed_wire import (
    WIRE_FIXED,
    FixedWireError,
    get_fixed_layout,
    negotiation_hash,
    service_types,
)
from repro.runtime.overload import LANE_LATENCY, RetryBudget, now_us, pack_deadline

from .framing import (
    FrameDecoder,
    FrameType,
    StatusCode,
    encode_setup,
    parse_overload_detail,
    request_frame_size,
    write_request_header,
)
from .transport import Network, SimSocket

__all__ = [
    "RpcError",
    "RpcTimeoutError",
    "RpcTransportError",
    "RpcResourceExhaustedError",
    "RetryPolicy",
    "XrpcChannel",
]


class RpcError(RuntimeError):
    """A call completed with a non-OK status."""

    def __init__(self, status: int, detail: str = "") -> None:
        super().__init__(f"rpc failed with status {status}: {detail}")
        self.status = status
        self.detail = detail


class RpcTimeoutError(RpcError):
    """The call's deadline passed.  ``stage`` names where: ``"client"``
    when no response arrived within the local iteration budget (the
    pending-call entry is cleaned up before this is raised — a response
    that straggles in later is dropped by :meth:`XrpcChannel.poll`
    instead of firing a dead callback), or the server-side stage that
    dropped the expired request (``dpu_ingress``, ``host_dispatch``,
    ``response_emit``, ``dispatch``) when the propagated deadline
    expired in the datapath (docs/OVERLOAD.md)."""

    def __init__(self, method: str, iterations: int, stage: str = "client") -> None:
        detail = (
            f"no response to {method} after {iterations} iterations"
            if stage == "client"
            else f"{method} deadline expired at {stage}"
        )
        super().__init__(StatusCode.DEADLINE_EXCEEDED, detail)
        self.method = method
        self.iterations = iterations
        self.stage = stage


class RpcTransportError(RpcError):
    """The connection under the call failed (the datapath aborted it, or
    the server became unreachable) — retryable for idempotent methods."""

    def __init__(self, detail: str = "") -> None:
        super().__init__(StatusCode.UNAVAILABLE, detail)


class RpcResourceExhaustedError(RpcError):
    """The server's admission controller shed the call before executing
    it (docs/OVERLOAD.md).  Always retryable — even for non-idempotent
    methods, since a shed request never ran — subject to the channel's
    retry budget; ``retry_after_ticks`` is the server's backoff hint in
    drive iterations."""

    def __init__(self, method: str, stage: str = "",
                 retry_after_ticks: int = 0) -> None:
        super().__init__(
            StatusCode.RESOURCE_EXHAUSTED,
            f"{method} shed at {stage or 'server'}"
            f" (retry after {retry_after_ticks} ticks)",
        )
        self.method = method
        self.stage = stage
        self.retry_after_ticks = retry_after_ticks


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered capped exponential backoff.

    Attempt *n* (0-based) waits up to ``ceiling = min(base_iters * 2**n,
    cap_iters)`` drive iterations before re-sending.  With ``jitter``
    (the default) and an ``rng``, the wait is drawn uniformly from
    ``[1, ceiling]`` ("full jitter"): clients that failed together retry
    *spread out* instead of in synchronized bursts that re-overload the
    server the moment it recovers.  Without an rng (or with
    ``jitter=False``) the wait is the deterministic ceiling — the
    pre-overload-control behavior.

    Only timeouts, transport failures, and admission sheds are retried —
    application-level statuses never are.  Timeouts and transport
    failures additionally require the caller to mark the call
    idempotent, since a timed-out request may still execute on the
    server; sheds never executed, so they are always retryable."""

    max_retries: int = 3
    base_iters: int = 64
    cap_iters: int = 4096
    jitter: bool = True

    def backoff(self, attempt: int, rng: random.Random | None = None) -> int:
        ceiling = min(self.base_iters * (1 << attempt), self.cap_iters)
        if rng is None or not self.jitter:
            return ceiling
        return 1 + rng.randrange(ceiling)


class XrpcChannel:
    """One client connection to an xRPC server address."""

    def __init__(
        self,
        network: Network | None,
        address: str,
        name: str = "xrpc-client",
        encode_mode: str | None = None,
        decode_mode: str | None = None,
        socket: SimSocket | None = None,
    ) -> None:
        """``socket`` bypasses the network registry with a pre-established
        stream (a :class:`~repro.xrpc.transport.StreamSocket` over an OS
        socketpair in the multiprocess deployments); ``network`` may then
        be None."""
        self.address = address
        if socket is not None:
            self.socket: SimSocket = socket
        else:
            if network is None:
                raise ValueError("XrpcChannel needs a network or an explicit socket")
            self.socket = network.connect(address, name)
        #: Request-serialization path (``ProtocolConfig.encode_mode``):
        #: ``"plan"``/``"generated"``/``"interpretive"`` force that path;
        #: ``None`` follows the process-wide default
        #: (see repro.proto.set_encode_mode).
        self.encode_mode = encode_mode
        #: Response-deserialization path (``ProtocolConfig.decode_mode``),
        #: same convention (see repro.proto.set_decode_mode).
        self.decode_mode = decode_mode
        #: True once :meth:`negotiate_fixed` succeeded: eligible requests
        #: ride the branchless fixed-layout wire (docs/PROTOCOL.md).
        self.wire_fixed = False
        self._setup_result: list[int] = []
        self._decoder = FrameDecoder()
        self._call_ids = itertools.count(1, 2)  # odd ids, like HTTP/2 client streams
        # call_id -> (response class, callback)
        self._pending: dict[int, tuple[type[Message], Callable]] = {}
        #: hook the caller uses to advance the rest of the simulated world
        #: while waiting synchronously (the server must run somewhere).
        self.drive: Callable[[], None] | None = None
        #: backoff schedule used by call_sync for idempotent retries
        self.retry_policy = RetryPolicy()
        #: token bucket bounding retry amplification (docs/OVERLOAD.md);
        #: exhausted budget means the last error propagates un-retried
        self.retry_budget = RetryBudget()
        # Deterministic per-channel jitter stream: crc32 of the channel
        # name (hash() is salted per process, crc32 is not), so runs are
        # reproducible while distinct channels still de-synchronize.
        self._retry_rng = random.Random(zlib.crc32(name.encode()) or 1)
        #: relative deadline stamped on every call when the caller gives
        #: none (0 = no deadline); see :meth:`call`
        self.default_timeout_us = 0
        #: priority lane for calls that don't specify one
        self.default_lane = LANE_LATENCY
        # -- failure statistics ----------------------------------------------
        self.timeouts = 0
        self.retries = 0
        self.transport_errors = 0
        #: calls shed by server admission control (RESOURCE_EXHAUSTED)
        self.sheds = 0
        #: detail bytes of the most recent non-OK response frame, for the
        #: error-callback path (callbacks only receive (None, status))
        self.last_error_detail = b""
        #: StageRecorder (repro.obs) — None keeps every hook free.
        self.trace = None
        self._trace_by_call: dict[int, object] = {}

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- wire-mode negotiation ------------------------------------------------

    def negotiate_fixed(self, service, salt: str = "", max_iters: int = 10_000) -> bool:
        """Offer the server this client's fixed-layout hash over the
        service's request/response types.  On a matching SETUP_ACK the
        connection switches eligible messages to WIRE_FIXED; on mismatch
        (or no answer within ``max_iters`` drive iterations) it stays on
        standard wire.  Requires :attr:`drive`, like :meth:`call_sync`.

        ``salt`` perturbs the hash — the fault-injection knob that forces
        a negotiation mismatch without touching the schema."""
        if self.drive is None:
            raise RuntimeError("negotiate_fixed needs channel.drive to advance the server")
        h = negotiation_hash(service_types(service), salt)
        self._setup_result.clear()
        self.socket.send(encode_setup(h))
        for _ in range(max_iters):
            self.drive()
            self.poll()
            if self._setup_result:
                self.wire_fixed = self._setup_result[0] == StatusCode.OK
                if self.trace is not None:
                    self.trace.instant("wire_fixed_negotiated",
                                       enabled=self.wire_fixed)
                return self.wire_fixed
        return False

    def disable_fixed(self) -> None:
        """Drop back to standard wire mid-connection (fault injection and
        operator override).  Per-frame wire modes make this safe at any
        point: in-flight fixed frames still parse on the server."""
        self.wire_fixed = False

    def call(
        self,
        method: str,
        request: Message,
        response_cls: type[Message],
        callback: Callable[[Message | None, int], None],
        timeout_us: int | None = None,
        lane: int | None = None,
    ) -> int:
        """Start a unary call; ``callback(response, status)`` fires on
        completion (response is None unless status == OK).

        ``timeout_us`` (or the channel's ``default_timeout_us``) stamps
        an absolute deadline word into the request frame: every datapath
        stage drops the request once the deadline passes instead of
        doing further work on it.  ``lane`` rides in the same word and
        classifies the request for admission control (docs/OVERLOAD.md).
        """
        call_id = next(self._call_ids)
        if timeout_us is None:
            timeout_us = self.default_timeout_us
        if lane is None:
            lane = self.default_lane
        deadline_word = 0
        if timeout_us:
            deadline_word = pack_deadline(now_us() + timeout_us, lane)
        elif lane != LANE_LATENCY:
            # No deadline, but the lane still matters to admission
            # control: a packed deadline of 0 means "never expires", so
            # the word costs 8 bytes and carries only the lane bit.
            deadline_word = pack_deadline(0, lane)
        self._pending[call_id] = (response_cls, callback)
        if self.trace is not None:
            # The client's view of the call is its own small timeline —
            # the datapath behind the server address stitches by the
            # derived (stream, serial) id instead, which this side cannot
            # observe.  ("xrpc", call_id) keeps the two correlatable by
            # the call_id attribute the front end records on ingress.
            ctx = self.trace.context(method=method, call_id=call_id)
            ctx.tid = ("xrpc", call_id)
            self.trace.event(ctx, "xrpc_send", method=method)
            self._trace_by_call[call_id] = ctx
        # Zero-copy framing: size the message first, build the frame in
        # one buffer, and have the encoder emit the wire bytes in place
        # after the header — no intermediate serialized `bytes`.
        wire_mode = 0
        sized = None
        if self.wire_fixed:
            layout = get_fixed_layout(type(request).DESCRIPTOR, request._FACTORY)
            if layout is not None:
                sized = layout.measure(request)
                if sized is not None:
                    wire_mode = WIRE_FIXED
        if sized is None:
            sized = prepare_emit(request, mode=self.encode_mode)
        m = method.encode("utf-8")
        frame = bytearray(
            request_frame_size(len(m), sized.size, deadline=bool(deadline_word))
        )
        payload_at = write_request_header(frame, call_id, m, sized.size,
                                          wire_mode, deadline_word)
        sized.emit_into(frame, payload_at)
        self.socket.send(frame)
        return call_id

    def cancel(self, call_id: int) -> bool:
        """Forget a pending call; its callback will never fire and a late
        response frame is silently dropped.  Returns whether the id was
        still pending."""
        self._trace_by_call.pop(call_id, None)
        return self._pending.pop(call_id, None) is not None

    def call_sync(
        self,
        method: str,
        request: Message,
        response_cls: type[Message],
        max_iters: int = 100_000,
        idempotent: bool = False,
        timeout_us: int | None = None,
        lane: int | None = None,
    ) -> Message:
        """Synchronous unary call.  Requires :attr:`drive` so the server
        (and the DPU/host datapath behind it) can make progress.

        Failure semantics: no response within ``max_iters`` raises
        :class:`RpcTimeoutError` (after cleaning up the pending call);
        UNAVAILABLE/ABORTED statuses raise :class:`RpcTransportError`;
        admission sheds raise :class:`RpcResourceExhaustedError`; a
        propagated deadline (``timeout_us``) that expires in the
        datapath raises :class:`RpcTimeoutError` with the dropping
        stage.

        Retry hygiene (docs/OVERLOAD.md): retries wait per
        :attr:`retry_policy` — jittered capped exponential backoff,
        never less than the server's retry-after hint — and each retry
        spends a :attr:`retry_budget` token; an exhausted budget
        propagates the last error immediately.  Client-side timeouts and
        transport failures retry only with ``idempotent=True`` (a
        timed-out request may still execute server-side); admission
        sheds always may (they never executed); server-observed deadline
        expiry never retries (the caller's deadline has passed)."""
        if self.drive is None:
            raise RuntimeError("call_sync needs channel.drive to advance the server")
        attempts = self.retry_policy.max_retries + 1
        for attempt in range(attempts):
            try:
                response = self._call_sync_once(
                    method, request, response_cls, max_iters, timeout_us, lane
                )
                self.retry_budget.on_success()
                return response
            except (RpcTimeoutError, RpcTransportError,
                    RpcResourceExhaustedError) as exc:
                if (
                    attempt == attempts - 1
                    or not self._retryable(exc, idempotent)
                    or not self.retry_budget.try_spend()
                ):
                    raise
                self.retries += 1
                if self.trace is not None:
                    self.trace.instant("retry", method=method,
                                       attempt=attempt + 1, status=exc.status)
                hint = getattr(exc, "retry_after_ticks", 0)
                wait = max(self.retry_policy.backoff(attempt, self._retry_rng),
                           hint)
                for _ in range(wait):
                    self.drive()
                    self.poll()
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _retryable(exc: RpcError, idempotent: bool) -> bool:
        if isinstance(exc, RpcResourceExhaustedError):
            return True  # shed before execution: safe for any method
        if isinstance(exc, RpcTimeoutError):
            # Only the *local* iteration budget is worth retrying; a
            # datapath-reported expiry means the caller's deadline passed.
            return idempotent and exc.stage == "client"
        return idempotent  # RpcTransportError

    def _call_sync_once(
        self,
        method: str,
        request: Message,
        response_cls: type[Message],
        max_iters: int,
        timeout_us: int | None = None,
        lane: int | None = None,
    ) -> Message:
        result: list = []

        def done(response: Message | None, status: int) -> None:
            result.append((response, status, self.last_error_detail))

        call_id = self.call(method, request, response_cls, done,
                            timeout_us=timeout_us, lane=lane)
        for _ in range(max_iters):
            self.drive()
            self.poll()
            if result:
                response, status, detail = result[0]
                if status in (StatusCode.UNAVAILABLE, StatusCode.ABORTED):
                    self.transport_errors += 1
                    raise RpcTransportError(f"{method}: status {status}")
                if status == StatusCode.RESOURCE_EXHAUSTED:
                    self.sheds += 1
                    stage, retry_after = parse_overload_detail(detail)
                    raise RpcResourceExhaustedError(method, stage, retry_after)
                if status == StatusCode.DEADLINE_EXCEEDED:
                    self.timeouts += 1
                    stage, _ = parse_overload_detail(detail)
                    raise RpcTimeoutError(method, 0, stage=stage or "server")
                if status != StatusCode.OK:
                    raise RpcError(status, repr(response))
                return response
        self.cancel(call_id)
        self.timeouts += 1
        raise RpcTimeoutError(method, max_iters)

    def pending(self) -> bool:
        return bool(self._pending)

    def progress(self, budget: int | None = None) -> int:
        """Pollable-protocol alias for :meth:`poll`, so a channel can
        register with a :class:`~repro.runtime.engine.ProgressEngine`."""
        return self.poll()

    def poll(self) -> int:
        """Process inbound frames; returns completed-call count."""
        data = self.socket.recv(1 << 20)
        if data:
            self._decoder.feed(data)
        completed = 0
        for frame in self._decoder.frames():
            if frame.frame_type is FrameType.SETUP_ACK:
                self._setup_result.append(frame.status)
                continue
            if frame.frame_type is not FrameType.RESPONSE:
                continue  # a server would not send requests; ignore
            entry = self._pending.pop(frame.call_id, None)
            if entry is None:
                self._trace_by_call.pop(frame.call_id, None)
                continue  # response to a cancelled/unknown call
            response_cls, callback = entry
            if self.trace is not None:
                ctx = self._trace_by_call.pop(frame.call_id, None)
                if ctx is not None:
                    self.trace.event(ctx, "xrpc_complete", status=frame.status,
                                     bytes=len(frame.message),
                                     wire_mode=frame.wire_mode)
            if frame.status == StatusCode.OK:
                if frame.wire_mode == WIRE_FIXED:
                    layout = get_fixed_layout(
                        response_cls.DESCRIPTOR, response_cls._FACTORY
                    )
                    if layout is None:
                        callback(None, StatusCode.INTERNAL)
                        completed += 1
                        continue
                    try:
                        response = layout.parse(response_cls, frame.message)
                    except FixedWireError:
                        callback(None, StatusCode.INTERNAL)
                        completed += 1
                        continue
                    callback(response, StatusCode.OK)
                else:
                    callback(
                        parse(response_cls, frame.message, mode=self.decode_mode),
                        StatusCode.OK,
                    )
            else:
                # Callbacks only see (None, status); stash the frame's
                # detail bytes (shed stage, retry-after hint) so callers
                # that need them can read last_error_detail synchronously.
                self.last_error_detail = frame.message
                callback(None, frame.status)
            completed += 1
        return completed

    def close(self) -> None:
        self.socket.close()
