"""xRPC client channel.

The client side of the xRPC substrate: frames unary requests, matches
responses to calls by call id, and fires continuations.  From the xRPC
client's perspective nothing changes when the server moves to the DPU —
only the target address does (§III-A: "The only configuration change is
to modify the xRPC server address").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.proto import Message, parse, prepare_emit
from repro.proto.fixed_wire import (
    WIRE_FIXED,
    FixedWireError,
    get_fixed_layout,
    negotiation_hash,
    service_types,
)

from .framing import (
    FrameDecoder,
    FrameType,
    StatusCode,
    encode_setup,
    request_frame_size,
    write_request_header,
)
from .transport import Network, SimSocket

__all__ = ["RpcError", "RpcTimeoutError", "RpcTransportError", "RetryPolicy", "XrpcChannel"]


class RpcError(RuntimeError):
    """A call completed with a non-OK status."""

    def __init__(self, status: int, detail: str = "") -> None:
        super().__init__(f"rpc failed with status {status}: {detail}")
        self.status = status
        self.detail = detail


class RpcTimeoutError(RpcError):
    """No response arrived within the call's iteration budget.  The
    pending-call entry is cleaned up before this is raised — a response
    that straggles in later is dropped by :meth:`XrpcChannel.poll`
    instead of firing a dead callback."""

    def __init__(self, method: str, iterations: int) -> None:
        super().__init__(
            StatusCode.DEADLINE_EXCEEDED,
            f"no response to {method} after {iterations} iterations",
        )
        self.method = method
        self.iterations = iterations


class RpcTransportError(RpcError):
    """The connection under the call failed (the datapath aborted it, or
    the server became unreachable) — retryable for idempotent methods."""

    def __init__(self, detail: str = "") -> None:
        super().__init__(StatusCode.UNAVAILABLE, detail)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for idempotent calls.

    Attempt *n* (0-based) waits ``min(base_iters * 2**n, cap_iters)``
    drive iterations before re-sending.  Only timeouts and transport
    failures are retried — application-level statuses never are — and
    only when the caller marked the call idempotent, since a timed-out
    request may still execute on the server."""

    max_retries: int = 3
    base_iters: int = 64
    cap_iters: int = 4096

    def backoff(self, attempt: int) -> int:
        return min(self.base_iters * (1 << attempt), self.cap_iters)


class XrpcChannel:
    """One client connection to an xRPC server address."""

    def __init__(
        self,
        network: Network | None,
        address: str,
        name: str = "xrpc-client",
        encode_mode: str | None = None,
        decode_mode: str | None = None,
        socket: SimSocket | None = None,
    ) -> None:
        """``socket`` bypasses the network registry with a pre-established
        stream (a :class:`~repro.xrpc.transport.StreamSocket` over an OS
        socketpair in the multiprocess deployments); ``network`` may then
        be None."""
        self.address = address
        if socket is not None:
            self.socket: SimSocket = socket
        else:
            if network is None:
                raise ValueError("XrpcChannel needs a network or an explicit socket")
            self.socket = network.connect(address, name)
        #: Request-serialization path (``ProtocolConfig.encode_mode``):
        #: ``"plan"``/``"generated"``/``"interpretive"`` force that path;
        #: ``None`` follows the process-wide default
        #: (see repro.proto.set_encode_mode).
        self.encode_mode = encode_mode
        #: Response-deserialization path (``ProtocolConfig.decode_mode``),
        #: same convention (see repro.proto.set_decode_mode).
        self.decode_mode = decode_mode
        #: True once :meth:`negotiate_fixed` succeeded: eligible requests
        #: ride the branchless fixed-layout wire (docs/PROTOCOL.md).
        self.wire_fixed = False
        self._setup_result: list[int] = []
        self._decoder = FrameDecoder()
        self._call_ids = itertools.count(1, 2)  # odd ids, like HTTP/2 client streams
        # call_id -> (response class, callback)
        self._pending: dict[int, tuple[type[Message], Callable]] = {}
        #: hook the caller uses to advance the rest of the simulated world
        #: while waiting synchronously (the server must run somewhere).
        self.drive: Callable[[], None] | None = None
        #: backoff schedule used by call_sync for idempotent retries
        self.retry_policy = RetryPolicy()
        # -- failure statistics ----------------------------------------------
        self.timeouts = 0
        self.retries = 0
        self.transport_errors = 0
        #: StageRecorder (repro.obs) — None keeps every hook free.
        self.trace = None
        self._trace_by_call: dict[int, object] = {}

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- wire-mode negotiation ------------------------------------------------

    def negotiate_fixed(self, service, salt: str = "", max_iters: int = 10_000) -> bool:
        """Offer the server this client's fixed-layout hash over the
        service's request/response types.  On a matching SETUP_ACK the
        connection switches eligible messages to WIRE_FIXED; on mismatch
        (or no answer within ``max_iters`` drive iterations) it stays on
        standard wire.  Requires :attr:`drive`, like :meth:`call_sync`.

        ``salt`` perturbs the hash — the fault-injection knob that forces
        a negotiation mismatch without touching the schema."""
        if self.drive is None:
            raise RuntimeError("negotiate_fixed needs channel.drive to advance the server")
        h = negotiation_hash(service_types(service), salt)
        self._setup_result.clear()
        self.socket.send(encode_setup(h))
        for _ in range(max_iters):
            self.drive()
            self.poll()
            if self._setup_result:
                self.wire_fixed = self._setup_result[0] == StatusCode.OK
                if self.trace is not None:
                    self.trace.instant("wire_fixed_negotiated",
                                       enabled=self.wire_fixed)
                return self.wire_fixed
        return False

    def disable_fixed(self) -> None:
        """Drop back to standard wire mid-connection (fault injection and
        operator override).  Per-frame wire modes make this safe at any
        point: in-flight fixed frames still parse on the server."""
        self.wire_fixed = False

    def call(
        self,
        method: str,
        request: Message,
        response_cls: type[Message],
        callback: Callable[[Message | None, int], None],
    ) -> int:
        """Start a unary call; ``callback(response, status)`` fires on
        completion (response is None unless status == OK)."""
        call_id = next(self._call_ids)
        self._pending[call_id] = (response_cls, callback)
        if self.trace is not None:
            # The client's view of the call is its own small timeline —
            # the datapath behind the server address stitches by the
            # derived (stream, serial) id instead, which this side cannot
            # observe.  ("xrpc", call_id) keeps the two correlatable by
            # the call_id attribute the front end records on ingress.
            ctx = self.trace.context(method=method, call_id=call_id)
            ctx.tid = ("xrpc", call_id)
            self.trace.event(ctx, "xrpc_send", method=method)
            self._trace_by_call[call_id] = ctx
        # Zero-copy framing: size the message first, build the frame in
        # one buffer, and have the encoder emit the wire bytes in place
        # after the header — no intermediate serialized `bytes`.
        wire_mode = 0
        sized = None
        if self.wire_fixed:
            layout = get_fixed_layout(type(request).DESCRIPTOR, request._FACTORY)
            if layout is not None:
                sized = layout.measure(request)
                if sized is not None:
                    wire_mode = WIRE_FIXED
        if sized is None:
            sized = prepare_emit(request, mode=self.encode_mode)
        m = method.encode("utf-8")
        frame = bytearray(request_frame_size(len(m), sized.size))
        payload_at = write_request_header(frame, call_id, m, sized.size, wire_mode)
        sized.emit_into(frame, payload_at)
        self.socket.send(frame)
        return call_id

    def cancel(self, call_id: int) -> bool:
        """Forget a pending call; its callback will never fire and a late
        response frame is silently dropped.  Returns whether the id was
        still pending."""
        self._trace_by_call.pop(call_id, None)
        return self._pending.pop(call_id, None) is not None

    def call_sync(
        self,
        method: str,
        request: Message,
        response_cls: type[Message],
        max_iters: int = 100_000,
        idempotent: bool = False,
    ) -> Message:
        """Synchronous unary call.  Requires :attr:`drive` so the server
        (and the DPU/host datapath behind it) can make progress.

        Failure semantics: no response within ``max_iters`` raises
        :class:`RpcTimeoutError` (after cleaning up the pending call);
        UNAVAILABLE/ABORTED statuses raise :class:`RpcTransportError`.
        With ``idempotent=True`` both are retried per
        :attr:`retry_policy` — capped exponential backoff, then the last
        error propagates.  Non-idempotent calls never retry: a timed-out
        request may still execute server-side."""
        if self.drive is None:
            raise RuntimeError("call_sync needs channel.drive to advance the server")
        attempts = self.retry_policy.max_retries + 1 if idempotent else 1
        last_error: RpcError | None = None
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                if self.trace is not None:
                    self.trace.instant("retry", method=method, attempt=attempt)
                for _ in range(self.retry_policy.backoff(attempt - 1)):
                    self.drive()
                    self.poll()
            try:
                return self._call_sync_once(method, request, response_cls, max_iters)
            except (RpcTimeoutError, RpcTransportError) as exc:
                last_error = exc
        raise last_error

    def _call_sync_once(
        self, method: str, request: Message, response_cls: type[Message], max_iters: int
    ) -> Message:
        result: list = []

        def done(response: Message | None, status: int) -> None:
            result.append((response, status))

        call_id = self.call(method, request, response_cls, done)
        for _ in range(max_iters):
            self.drive()
            self.poll()
            if result:
                response, status = result[0]
                if status in (StatusCode.UNAVAILABLE, StatusCode.ABORTED):
                    self.transport_errors += 1
                    raise RpcTransportError(f"{method}: status {status}")
                if status != StatusCode.OK:
                    raise RpcError(status, repr(response))
                return response
        self.cancel(call_id)
        self.timeouts += 1
        raise RpcTimeoutError(method, max_iters)

    def pending(self) -> bool:
        return bool(self._pending)

    def progress(self, budget: int | None = None) -> int:
        """Pollable-protocol alias for :meth:`poll`, so a channel can
        register with a :class:`~repro.runtime.engine.ProgressEngine`."""
        return self.poll()

    def poll(self) -> int:
        """Process inbound frames; returns completed-call count."""
        data = self.socket.recv(1 << 20)
        if data:
            self._decoder.feed(data)
        completed = 0
        for frame in self._decoder.frames():
            if frame.frame_type is FrameType.SETUP_ACK:
                self._setup_result.append(frame.status)
                continue
            if frame.frame_type is not FrameType.RESPONSE:
                continue  # a server would not send requests; ignore
            entry = self._pending.pop(frame.call_id, None)
            if entry is None:
                self._trace_by_call.pop(frame.call_id, None)
                continue  # response to a cancelled/unknown call
            response_cls, callback = entry
            if self.trace is not None:
                ctx = self._trace_by_call.pop(frame.call_id, None)
                if ctx is not None:
                    self.trace.event(ctx, "xrpc_complete", status=frame.status,
                                     bytes=len(frame.message),
                                     wire_mode=frame.wire_mode)
            if frame.status == StatusCode.OK:
                if frame.wire_mode == WIRE_FIXED:
                    layout = get_fixed_layout(
                        response_cls.DESCRIPTOR, response_cls._FACTORY
                    )
                    if layout is None:
                        callback(None, StatusCode.INTERNAL)
                        completed += 1
                        continue
                    try:
                        response = layout.parse(response_cls, frame.message)
                    except FixedWireError:
                        callback(None, StatusCode.INTERNAL)
                        completed += 1
                        continue
                    callback(response, StatusCode.OK)
                else:
                    callback(
                        parse(response_cls, frame.message, mode=self.decode_mode),
                        StatusCode.OK,
                    )
            else:
                callback(None, frame.status)
            completed += 1
        return completed

    def close(self) -> None:
        self.socket.close()
