"""Simulated TCP transport for the xRPC substrate.

The paper's DPU terminates the clients' TCP connections ("often TCP/IP",
§III-A) and multiplexes them onto the host link.  This module provides the
minimal byte-stream machinery for that: a :class:`Network` registry of
listening addresses, connection establishment, and in-order reliable byte
streams with partial-read semantics (so framing code must handle short
reads, as over real sockets).
"""

from __future__ import annotations

from collections import deque

__all__ = [
    "TransportError",
    "ConnectionClosed",
    "SimSocket",
    "StreamSocket",
    "Listener",
    "Network",
]


class TransportError(RuntimeError):
    """Connection-level failure."""


class ConnectionClosed(TransportError):
    """The peer closed the stream."""


class SimSocket:
    """One direction-pair of byte streams between two endpoints."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rx = bytearray()
        self.peer: "SimSocket | None" = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- wiring ---------------------------------------------------------------

    @classmethod
    def pair(cls, name_a: str = "a", name_b: str = "b") -> tuple["SimSocket", "SimSocket"]:
        a, b = cls(name_a), cls(name_b)
        a.peer, b.peer = b, a
        return a, b

    # -- byte stream ------------------------------------------------------------

    def send(self, data: bytes) -> int:
        if self._closed or self.peer is None:
            raise ConnectionClosed(f"{self.name}: send on closed socket")
        if self.peer._closed:
            raise ConnectionClosed(f"{self.name}: peer closed")
        self.peer._rx += data
        self.peer.bytes_received += len(data)
        self.bytes_sent += len(data)
        return len(data)

    def recv(self, max_bytes: int = 65536) -> bytes:
        """Non-blocking read of up to ``max_bytes``; empty result means no
        data *currently* available (distinguish closure with
        :meth:`eof`)."""
        if max_bytes <= 0:
            return b""
        n = min(max_bytes, len(self._rx))
        out = bytes(self._rx[:n])
        del self._rx[:n]
        return out

    def pending(self) -> int:
        return len(self._rx)

    def eof(self) -> bool:
        """True when the peer closed and all buffered bytes are drained."""
        return (self.peer is None or self.peer._closed) and not self._rx

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class StreamSocket:
    """:class:`SimSocket`-compatible adapter over a real OS socket.

    The multiprocess deployments (:mod:`repro.runtime.procs`) carry the
    xRPC byte stream over an ``AF_UNIX`` socketpair between the client
    process and the DPU frontend; this adapter gives that stream the same
    non-blocking partial-read surface the framing layer already handles,
    so :class:`~repro.xrpc.channel.XrpcChannel` and the frontend run
    unchanged over either.
    """

    def __init__(self, sock, name: str = "stream") -> None:
        sock.setblocking(False)
        self._sock = sock
        self.name = name
        self._rx = bytearray()
        self._txq = bytearray()
        self._closed = False
        self._peer_closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- byte stream ------------------------------------------------------------

    def send(self, data: bytes) -> int:
        if self._closed:
            raise ConnectionClosed(f"{self.name}: send on closed socket")
        if self._peer_closed:
            raise ConnectionClosed(f"{self.name}: peer closed")
        self._txq += data
        self._drain_tx()
        if self._peer_closed:
            raise ConnectionClosed(f"{self.name}: peer closed")
        self.bytes_sent += len(data)
        return len(data)

    def _drain_tx(self) -> None:
        while self._txq and not self._peer_closed:
            try:
                n = self._sock.send(self._txq)
            except BlockingIOError:
                break
            except OSError:
                self._peer_closed = True
                break
            del self._txq[:n]

    def _pump(self) -> None:
        if self._closed:
            return
        self._drain_tx()
        while not self._peer_closed:
            try:
                data = self._sock.recv(65536)
            except BlockingIOError:
                break
            except OSError:
                self._peer_closed = True
                break
            if not data:
                self._peer_closed = True
                break
            self._rx += data
            self.bytes_received += len(data)

    def recv(self, max_bytes: int = 65536) -> bytes:
        if max_bytes <= 0:
            return b""
        self._pump()
        n = min(max_bytes, len(self._rx))
        out = bytes(self._rx[:n])
        del self._rx[:n]
        return out

    def pending(self) -> int:
        self._pump()
        return len(self._rx)

    def eof(self) -> bool:
        self._pump()
        return self._peer_closed and not self._rx

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        return self._sock.fileno()


class Listener:
    """A listening address: accepts queued connection attempts."""

    def __init__(self, address: str) -> None:
        self.address = address
        self._backlog: deque[SimSocket] = deque()

    def _enqueue(self, server_side: SimSocket) -> None:
        self._backlog.append(server_side)

    def accept(self) -> SimSocket | None:
        """Pop one pending connection, or None."""
        return self._backlog.popleft() if self._backlog else None


class Network:
    """Address registry — the in-process internet."""

    def __init__(self) -> None:
        self._listeners: dict[str, Listener] = {}

    def listen(self, address: str) -> Listener:
        if address in self._listeners:
            raise TransportError(f"address {address!r} already in use")
        listener = Listener(address)
        self._listeners[address] = listener
        return listener

    def connect(self, address: str, client_name: str = "client") -> SimSocket:
        listener = self._listeners.get(address)
        if listener is None:
            raise TransportError(f"connection refused: {address!r}")
        client_side, server_side = SimSocket.pair(client_name, f"{address}#srv")
        listener._enqueue(server_side)
        return client_side

    def close(self, address: str) -> None:
        self._listeners.pop(address, None)
