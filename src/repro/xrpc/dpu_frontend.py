"""The DPU front end and the host compatibility layer (paper §III-A, §V-D).

``OffloadedXrpcServer`` is the xRPC server that now runs *on the DPU*: it
terminates client connections, and for every unary request looks up the
procedure ID and hands the serialized payload to the
:class:`~repro.offload.engine.DpuEngine`, which deserializes it into the
outgoing protocol block.  When the host's response comes back (already
serialized — response serialization stays on the host in this prototype),
the front end wraps it in an xRPC response frame and forwards it to the
client.  Clients cannot tell the difference; they only changed the server
address.

``register_offloaded_servicer`` is the host-side compatibility layer: an
application servicer written for the normal xRPC server runs unmodified —
its methods receive the request object (here the zero-copy
:class:`~repro.offload.materialize.CppMessageView`, which duck-types field
access exactly like a parsed message) and a ``None`` context ("we use a
null pointer for simplicity"), and return a response Message.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core import Flags, IncomingRequest
from repro.offload.engine import DpuEngine, EngineCrashedError, HostEngine
from repro.proto.descriptor import ServiceDescriptor
from repro.proto.fixed_wire import negotiation_hash, service_types
from repro.runtime.overload import deadline_expired, now_us

from .framing import (
    FrameDecoder,
    FrameType,
    StatusCode,
    encode_overload_detail,
    encode_response,
    encode_setup_ack,
    response_frame_size,
    write_response_header,
)
from .service import assign_method_ids, build_dispatch_table, method_path
from .transport import Listener, Network, SimSocket

__all__ = ["OffloadedXrpcServer", "register_offloaded_servicer"]


@dataclass
class _Connection:
    socket: SimSocket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)


class OffloadedXrpcServer:
    """xRPC termination on the DPU, bridged to RPC over RDMA."""

    def __init__(
        self,
        network: Network | None,
        address: str,
        dpu: DpuEngine,
        service: ServiceDescriptor,
        layout_salt: str = "",
    ) -> None:
        """With ``network=None`` the server starts without a listener;
        connections arrive through :meth:`adopt` instead (the multiprocess
        deployments hand it :class:`~repro.xrpc.transport.StreamSocket`
        ends of pre-established OS socketpairs)."""
        self.address = address
        self.listener: Listener | None = network.listen(address) if network is not None else None
        self.dpu = dpu
        self.service = service
        self._method_ids = assign_method_ids(service)
        self._connections: list[_Connection] = []
        self.requests_forwarded = 0
        self.responses_returned = 0
        #: requests served through the degraded path (DPU engine down →
        #: wire bytes forwarded for host-side deserialization)
        self.fallback_requests = 0
        #: AdmissionController (repro.runtime.overload) — None admits
        #: everything with zero overhead (docs/OVERLOAD.md)
        self.admission = None
        #: CircuitBreaker on the *offload* path — while open, requests
        #: take the host-parse fallback even though the DPU engine is up
        self.breaker = None
        #: requests routed to host-parse because the breaker denied the
        #: offload path (distinct from fallback_requests' crash failover)
        self.breaker_fallbacks = 0
        #: requests dropped expired-on-arrival at the DPU, before the
        #: arena deserializer touched them
        self.deadline_expired = {"dpu_ingress": 0}
        # Two priority lanes of decoded-but-unforwarded requests:
        # (conn, frame, arrival_us).  Latency lane drains first; with
        # budget=None both drain fully each pass.
        self._lanes = (deque(), deque())
        # Event-loop pass counter — the breaker's monotonic time unit.
        self._ticks = 0
        #: Perturbs this front end's fixed-layout negotiation hash; any
        #: non-empty value forces SETUP mismatches (fault injection).
        self.layout_salt = layout_salt
        self.setup_matches = 0
        self.setup_mismatches = 0
        #: StageRecorder (repro.obs) — None keeps every hook free.
        self.trace = None

    def poll(self) -> int:
        """Deprecation shim for the historical name; the front end is a
        :class:`~repro.runtime.pollable.Pollable` driven via
        :meth:`progress`."""
        return self.progress()

    def progress(self, budget: int | None = None) -> int:
        """One event-loop pass: accept, convert xRPC→RPC over RDMA,
        advance the protocol (responses fire continuations that write
        back to the right client socket).  ``budget`` caps the requests
        *forwarded* in one pass — expired drops and admission sheds are
        cheap and never charged against it; unforwarded requests wait in
        their priority lane, where their sojourn feeds CoDel-style
        admission (docs/OVERLOAD.md)."""
        self._ticks += 1
        while self.listener is not None:
            sock = self.listener.accept()
            if sock is None:
                break
            self._connections.append(_Connection(sock))
        for conn in self._connections:
            data = conn.socket.recv(1 << 20)
            if data:
                conn.decoder.feed(data)
            for frame in conn.decoder.frames():
                if frame.frame_type is FrameType.SETUP:
                    self._answer_setup(conn, frame.method)
                elif frame.frame_type is FrameType.REQUEST:
                    lane = frame.deadline_word & 1
                    stamp = (
                        now_us()
                        if self.admission is not None or frame.deadline_word
                        else 0
                    )
                    self._lanes[lane].append((conn, frame, stamp))
        forwarded = 0
        for lane, queue in enumerate(self._lanes):
            while queue and (budget is None or forwarded < budget):
                conn, frame, arrival = queue.popleft()
                if conn.socket.eof():
                    continue  # client gone; a reply would be dropped anyway
                if self._drop_or_shed(conn, frame, lane, arrival):
                    continue
                forwarded += 1
                self._forward(
                    conn, frame.call_id, frame.method, frame.message,
                    frame.wire_mode, frame.deadline_word, lane,
                )
        self.dpu.progress(budget)
        self._connections = [c for c in self._connections if not c.socket.eof()]
        return forwarded

    def _drop_or_shed(self, conn: _Connection, frame, lane: int,
                      arrival: int) -> bool:
        """DPU-ingress overload checks, ahead of the arena deserializer:
        expired-on-arrival requests are dropped, then the admission
        controller may shed.  The depth signal counts both lanes *and*
        the requests already in flight to the host — queueing at the
        PCIe handoff is where the tail lives (nanoPU, PAPERS.md).
        Returns True when the request was answered without forwarding."""
        word = frame.deadline_word
        if word and deadline_expired(word):
            self.deadline_expired["dpu_ingress"] += 1
            if self.trace is not None:
                self.trace.instant("deadline_expired", stage="dpu_ingress",
                                   call_id=frame.call_id)
            conn.socket.send(encode_response(
                frame.call_id, StatusCode.DEADLINE_EXCEEDED,
                encode_overload_detail("dpu_ingress"),
            ))
            return True
        if self.admission is None:
            return False
        now = now_us()
        self.admission.note_sojourn(now - arrival, now)
        depth = (
            1
            + sum(len(q) for q in self._lanes)
            + self.dpu.channel.client.outstanding
        )
        decision = self.admission.decide(lane, depth, now)
        if decision.admit:
            return False
        if self.trace is not None:
            self.trace.instant("shed", lane=lane, call_id=frame.call_id,
                               reason=decision.reason)
        conn.socket.send(encode_response(
            frame.call_id, StatusCode.RESOURCE_EXHAUSTED,
            encode_overload_detail("dpu_admission", decision.retry_after_ticks),
        ))
        return True

    def adopt(self, socket: SimSocket) -> None:
        """Serve a pre-established connection (no listener involved)."""
        self._connections.append(_Connection(socket))

    def _answer_setup(self, conn: _Connection, offered_hash: str) -> None:
        """WIRE_FIXED negotiation on the DPU: the front end hashes the
        same service schema the client did — the negotiation that makes
        the branchless decoder safe to select per frame."""
        mine = negotiation_hash(service_types(self.service), self.layout_salt)
        if offered_hash == mine:
            self.setup_matches += 1
            conn.socket.send(encode_setup_ack(StatusCode.OK))
        else:
            self.setup_mismatches += 1
            conn.socket.send(encode_setup_ack(StatusCode.INVALID_ARGUMENT))
        if self.trace is not None:
            self.trace.instant("wire_fixed_setup", match=offered_hash == mine)

    def _forward(
        self, conn: _Connection, call_id: int, method: str, payload: bytes,
        wire_mode: int = 0, deadline_word: int = 0, lane: int = 0,
    ) -> None:
        method_id = self._method_ids.get(method)
        if method_id is None:
            conn.socket.send(encode_response(call_id, StatusCode.UNIMPLEMENTED, b""))
            return
        self.requests_forwarded += 1
        ctx = None
        if self.trace is not None:
            ctx = self.trace.context(method=method, call_id=call_id, lane=lane)
            self.trace.event(ctx, "ingress", bytes=len(payload))
        # Offload-path circuit breaker (repro.runtime.overload): while
        # open, route through host-parse fallback even though the DPU is
        # healthy; while half-open, responses below grade the probes.
        offloaded = self.dpu.ready
        if (
            offloaded
            and self.breaker is not None
            and not self.breaker.allow(self._ticks)
        ):
            offloaded = False
            self.breaker_fallbacks += 1
            if self.trace is not None:
                self.trace.event(ctx, "breaker_fallback",
                                 state=self.breaker.state)
        probe = offloaded and self.breaker is not None

        def on_response(view: memoryview, flags: int) -> None:
            # The host's response is already serialized protobuf; the DPU
            # only reframes it for the xRPC client (§III-A).  The payload
            # is copied exactly once — from the protocol block straight
            # into the outgoing frame, with no intermediate bytes object.
            self.responses_returned += 1
            if flags & Flags.EXPIRED:
                # The propagated deadline expired in the datapath; the
                # payload names the dropping stage (docs/OVERLOAD.md).
                status = StatusCode.DEADLINE_EXCEEDED
            elif flags & Flags.ABORTED:
                # The datapath gave up on this request (deadline expiry,
                # connection reset without replay): ABORTED is retryable,
                # INTERNAL would not be.
                status = StatusCode.ABORTED
            elif flags & Flags.ERROR:
                status = StatusCode.INTERNAL
            else:
                status = StatusCode.OK
            if probe:
                if flags & Flags.ERROR and not flags & Flags.EXPIRED:
                    self.breaker.record_failure(self._ticks)
                else:
                    self.breaker.record_success(self._ticks)
            if self.trace is not None and ctx is not None:
                self.trace.event(ctx, "respond", status=int(status),
                                 flags=flags, bytes=len(view))
            frame = bytearray(response_frame_size(len(view)))
            payload_at = write_response_header(frame, call_id, status, len(view))
            frame[payload_at:] = view
            conn.socket.send(frame)

        try:
            if not offloaded:
                # Graceful degradation (docs/FAULTS.md): with the DPU
                # engine down — or freshly respawned and still awaiting
                # its bootstrap blob — keep serving by shipping wire
                # bytes for host-side deserialization: slower, never
                # unavailable.  Breaker denials land here too (with the
                # engine healthy); those were counted above instead.
                if not self.dpu.ready:
                    self.fallback_requests += 1
                self.dpu.call_raw(method_id, payload, on_response, trace_ctx=ctx,
                                  wire_mode=wire_mode, deadline=deadline_word)
            else:
                self.dpu.call(method_id, payload, on_response, trace_ctx=ctx,
                              wire_mode=wire_mode, deadline=deadline_word)
        except EngineCrashedError:
            # Crash raced the check: same degradation, same request.
            self.fallback_requests += 1
            self.dpu.call_raw(method_id, payload, on_response, trace_ctx=ctx,
                              wire_mode=wire_mode, deadline=deadline_word)
        except Exception:  # noqa: BLE001 — malformed request payloads
            conn.socket.send(encode_response(call_id, StatusCode.INVALID_ARGUMENT, b""))


def register_offloaded_servicer(
    host: HostEngine,
    service: ServiceDescriptor,
    servicer: object,
    offload_responses: bool = False,
) -> None:
    """Host side of the compatibility layer: plug an ordinary servicer
    into the offload engine.  Its methods run on already-deserialized
    objects; no request parsing happens on the host.

    With ``offload_responses=True``, response *serialization* moves to
    the DPU as well: the servicer's response Messages cross the PCIe as
    C++ objects and the DPU front end serializes them before framing
    (§III-A: "serialization can be offloaded with similar techniques").
    """
    table = build_dispatch_table(service, servicer)
    ids = assign_method_ids(service)
    for m in service.methods:
        path = method_path(service, m)
        binding = table[path]

        def make_callback(binding=binding):
            def callback(view, request: IncomingRequest):
                return binding.handler(view, None)

            return callback

        host.register_method(
            ids[path],
            m.input_type.full_name,
            make_callback(),
            name=path,
            output_type=m.output_type.full_name if offload_responses else None,
        )
