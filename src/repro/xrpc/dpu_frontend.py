"""The DPU front end and the host compatibility layer (paper §III-A, §V-D).

``OffloadedXrpcServer`` is the xRPC server that now runs *on the DPU*: it
terminates client connections, and for every unary request looks up the
procedure ID and hands the serialized payload to the
:class:`~repro.offload.engine.DpuEngine`, which deserializes it into the
outgoing protocol block.  When the host's response comes back (already
serialized — response serialization stays on the host in this prototype),
the front end wraps it in an xRPC response frame and forwards it to the
client.  Clients cannot tell the difference; they only changed the server
address.

``register_offloaded_servicer`` is the host-side compatibility layer: an
application servicer written for the normal xRPC server runs unmodified —
its methods receive the request object (here the zero-copy
:class:`~repro.offload.materialize.CppMessageView`, which duck-types field
access exactly like a parsed message) and a ``None`` context ("we use a
null pointer for simplicity"), and return a response Message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Flags, IncomingRequest
from repro.offload.engine import DpuEngine, EngineCrashedError, HostEngine
from repro.proto.descriptor import ServiceDescriptor
from repro.proto.fixed_wire import negotiation_hash, service_types

from .framing import (
    FrameDecoder,
    FrameType,
    StatusCode,
    encode_response,
    encode_setup_ack,
    response_frame_size,
    write_response_header,
)
from .service import assign_method_ids, build_dispatch_table, method_path
from .transport import Listener, Network, SimSocket

__all__ = ["OffloadedXrpcServer", "register_offloaded_servicer"]


@dataclass
class _Connection:
    socket: SimSocket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)


class OffloadedXrpcServer:
    """xRPC termination on the DPU, bridged to RPC over RDMA."""

    def __init__(
        self,
        network: Network | None,
        address: str,
        dpu: DpuEngine,
        service: ServiceDescriptor,
        layout_salt: str = "",
    ) -> None:
        """With ``network=None`` the server starts without a listener;
        connections arrive through :meth:`adopt` instead (the multiprocess
        deployments hand it :class:`~repro.xrpc.transport.StreamSocket`
        ends of pre-established OS socketpairs)."""
        self.address = address
        self.listener: Listener | None = network.listen(address) if network is not None else None
        self.dpu = dpu
        self.service = service
        self._method_ids = assign_method_ids(service)
        self._connections: list[_Connection] = []
        self.requests_forwarded = 0
        self.responses_returned = 0
        #: requests served through the degraded path (DPU engine down →
        #: wire bytes forwarded for host-side deserialization)
        self.fallback_requests = 0
        #: Perturbs this front end's fixed-layout negotiation hash; any
        #: non-empty value forces SETUP mismatches (fault injection).
        self.layout_salt = layout_salt
        self.setup_matches = 0
        self.setup_mismatches = 0
        #: StageRecorder (repro.obs) — None keeps every hook free.
        self.trace = None

    def poll(self) -> int:
        """Deprecation shim for the historical name; the front end is a
        :class:`~repro.runtime.pollable.Pollable` driven via
        :meth:`progress`."""
        return self.progress()

    def progress(self, budget: int | None = None) -> int:
        """One event-loop pass: accept, convert xRPC→RPC over RDMA,
        advance the protocol (responses fire continuations that write
        back to the right client socket).  ``budget`` caps the requests
        forwarded in one pass."""
        while self.listener is not None:
            sock = self.listener.accept()
            if sock is None:
                break
            self._connections.append(_Connection(sock))
        forwarded = 0
        for conn in self._connections:
            data = conn.socket.recv(1 << 20)
            if data:
                conn.decoder.feed(data)
            for frame in conn.decoder.frames():
                if frame.frame_type is FrameType.SETUP:
                    self._answer_setup(conn, frame.method)
                elif frame.frame_type is FrameType.REQUEST:
                    self._forward(
                        conn, frame.call_id, frame.method, frame.message,
                        frame.wire_mode,
                    )
                    forwarded += 1
            if budget is not None and forwarded >= budget:
                break
        self.dpu.progress(budget)
        self._connections = [c for c in self._connections if not c.socket.eof()]
        return forwarded

    def adopt(self, socket: SimSocket) -> None:
        """Serve a pre-established connection (no listener involved)."""
        self._connections.append(_Connection(socket))

    def _answer_setup(self, conn: _Connection, offered_hash: str) -> None:
        """WIRE_FIXED negotiation on the DPU: the front end hashes the
        same service schema the client did — the negotiation that makes
        the branchless decoder safe to select per frame."""
        mine = negotiation_hash(service_types(self.service), self.layout_salt)
        if offered_hash == mine:
            self.setup_matches += 1
            conn.socket.send(encode_setup_ack(StatusCode.OK))
        else:
            self.setup_mismatches += 1
            conn.socket.send(encode_setup_ack(StatusCode.INVALID_ARGUMENT))
        if self.trace is not None:
            self.trace.instant("wire_fixed_setup", match=offered_hash == mine)

    def _forward(
        self, conn: _Connection, call_id: int, method: str, payload: bytes,
        wire_mode: int = 0,
    ) -> None:
        method_id = self._method_ids.get(method)
        if method_id is None:
            conn.socket.send(encode_response(call_id, StatusCode.UNIMPLEMENTED, b""))
            return
        self.requests_forwarded += 1
        ctx = None
        if self.trace is not None:
            ctx = self.trace.context(method=method, call_id=call_id)
            self.trace.event(ctx, "ingress", bytes=len(payload))

        def on_response(view: memoryview, flags: int) -> None:
            # The host's response is already serialized protobuf; the DPU
            # only reframes it for the xRPC client (§III-A).  The payload
            # is copied exactly once — from the protocol block straight
            # into the outgoing frame, with no intermediate bytes object.
            self.responses_returned += 1
            if flags & Flags.ABORTED:
                # The datapath gave up on this request (deadline expiry,
                # connection reset without replay): ABORTED is retryable,
                # INTERNAL would not be.
                status = StatusCode.ABORTED
            elif flags & Flags.ERROR:
                status = StatusCode.INTERNAL
            else:
                status = StatusCode.OK
            if self.trace is not None and ctx is not None:
                self.trace.event(ctx, "respond", status=int(status),
                                 flags=flags, bytes=len(view))
            frame = bytearray(response_frame_size(len(view)))
            payload_at = write_response_header(frame, call_id, status, len(view))
            frame[payload_at:] = view
            conn.socket.send(frame)

        try:
            if not self.dpu.ready:
                # Graceful degradation (docs/FAULTS.md): with the DPU
                # engine down — or freshly respawned and still awaiting
                # its bootstrap blob — keep serving by shipping wire
                # bytes for host-side deserialization: slower, never
                # unavailable.
                self.fallback_requests += 1
                self.dpu.call_raw(method_id, payload, on_response, trace_ctx=ctx,
                                  wire_mode=wire_mode)
            else:
                self.dpu.call(method_id, payload, on_response, trace_ctx=ctx,
                              wire_mode=wire_mode)
        except EngineCrashedError:
            # Crash raced the check: same degradation, same request.
            self.fallback_requests += 1
            self.dpu.call_raw(method_id, payload, on_response, trace_ctx=ctx,
                              wire_mode=wire_mode)
        except Exception:  # noqa: BLE001 — malformed request payloads
            conn.socket.send(encode_response(call_id, StatusCode.INVALID_ARGUMENT, b""))


def register_offloaded_servicer(
    host: HostEngine,
    service: ServiceDescriptor,
    servicer: object,
    offload_responses: bool = False,
) -> None:
    """Host side of the compatibility layer: plug an ordinary servicer
    into the offload engine.  Its methods run on already-deserialized
    objects; no request parsing happens on the host.

    With ``offload_responses=True``, response *serialization* moves to
    the DPU as well: the servicer's response Messages cross the PCIe as
    C++ objects and the DPU front end serializes them before framing
    (§III-A: "serialization can be offloaded with similar techniques").
    """
    table = build_dispatch_table(service, servicer)
    ids = assign_method_ids(service)
    for m in service.methods:
        path = method_path(service, m)
        binding = table[path]

        def make_callback(binding=binding):
            def callback(view, request: IncomingRequest):
                return binding.handler(view, None)

            return callback

        host.register_method(
            ids[path],
            m.input_type.full_name,
            make_callback(),
            name=path,
            output_type=m.output_type.full_name if offload_responses else None,
        )
