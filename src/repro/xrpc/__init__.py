"""xRPC: the gRPC-like front-end framework and the offload bridges.

The substrate the paper offloads: simulated TCP transport, gRPC-style
framing and unary calls, generated stubs and servicer dispatch, plus the
two halves that move the server onto the DPU — the
:class:`OffloadedXrpcServer` front end and the host compatibility layer
(:func:`register_offloaded_servicer`).
"""

from .channel import (
    RetryPolicy,
    RpcError,
    RpcResourceExhaustedError,
    RpcTimeoutError,
    RpcTransportError,
    XrpcChannel,
)
from .dpu_frontend import OffloadedXrpcServer, register_offloaded_servicer
from .framing import (
    Frame,
    FrameDecoder,
    FrameType,
    FramingError,
    StatusCode,
    encode_overload_detail,
    encode_request,
    encode_response,
    parse_overload_detail,
)
from .server import ServerStats, XrpcServer
from .service import (
    MethodBinding,
    ServiceError,
    assign_method_ids,
    build_dispatch_table,
    make_stub_class,
    method_path,
)
from .transport import ConnectionClosed, Listener, Network, SimSocket, TransportError

__all__ = [
    "RetryPolicy",
    "RpcError",
    "RpcResourceExhaustedError",
    "RpcTimeoutError",
    "RpcTransportError",
    "XrpcChannel",
    "encode_overload_detail",
    "parse_overload_detail",
    "OffloadedXrpcServer",
    "register_offloaded_servicer",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "FramingError",
    "StatusCode",
    "encode_request",
    "encode_response",
    "ServerStats",
    "XrpcServer",
    "MethodBinding",
    "ServiceError",
    "assign_method_ids",
    "build_dispatch_table",
    "make_stub_class",
    "method_path",
    "ConnectionClosed",
    "Listener",
    "Network",
    "SimSocket",
    "TransportError",
]
