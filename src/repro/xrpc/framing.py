"""xRPC wire framing.

gRPC proper rides on HTTP/2; what the offload architecture needs from it
is (a) length-prefixed protobuf messages — gRPC's 5-byte message prefix —
and (b) multiplexed unary calls with a method path and a status.  We keep
gRPC's message prefix verbatim (compressed flag + u32 big-endian length)
and replace the HTTP/2 stream machinery with an explicit frame header, a
simplification documented in DESIGN.md.

Frame layout::

    u8   frame_type        # REQUEST / RESPONSE
    u32  call_id           # client-chosen stream id (odd, increasing)
    u8   status            # responses: gRPC status code (0 = OK)
                           # requests:  request-flags byte (REQ_FLAG_*)
    u16  method_len        # requests only
    ...  method path       # "/pkg.Service/Method"
    u64  deadline word     # requests with REQ_FLAG_DEADLINE only:
                           # packed absolute deadline + priority lane
                           # (repro.runtime.overload.pack_deadline)
    u8   compressed_flag   # gRPC message prefix; doubles as wire mode
    u32  message_len       # big-endian, as in gRPC
    ...  message bytes

The status byte was always written as 0 on request frames, so reusing
it as a request-flags byte is wire-compatible: old clients emit flags 0
(no deadline word) and old servers treated the byte as padding.

The compressed flag doubles as the **wire mode**: 0 is standard
protobuf wire, 1 remains gRPC "compressed" (rejected), and 2 marks a
WIRE_FIXED payload — the negotiated branchless fixed-layout encoding of
:mod:`repro.proto.fixed_wire`.  Two extra frame types carry the
negotiation: a SETUP frame whose method field is the client's layout
hash, answered by a SETUP_ACK whose status says whether the server's
hash matches (docs/PROTOCOL.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.proto.fixed_wire import WIRE_FIXED, WIRE_STANDARD

__all__ = [
    "FrameType",
    "StatusCode",
    "Frame",
    "FramingError",
    "REQ_FLAG_DEADLINE",
    "encode_request",
    "encode_response",
    "encode_setup",
    "encode_setup_ack",
    "encode_overload_detail",
    "parse_overload_detail",
    "request_frame_size",
    "response_frame_size",
    "write_request_header",
    "write_response_header",
    "FrameDecoder",
]


class FramingError(RuntimeError):
    """Malformed frame."""


class FrameType:
    REQUEST = 1
    RESPONSE = 2
    #: wire-mode negotiation: client -> server, method field = layout hash
    SETUP = 3
    #: server -> client answer; status OK = hashes match, WIRE_FIXED on
    SETUP_ACK = 4


class StatusCode:
    """The gRPC status codes the layer uses."""

    OK = 0
    UNKNOWN = 2
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    #: admission control shed the request before execution; the detail
    #: carries a retry-after hint (docs/OVERLOAD.md).  Safe to retry even
    #: for non-idempotent calls — shed requests never ran.
    RESOURCE_EXHAUSTED = 8
    ABORTED = 10
    UNIMPLEMENTED = 12
    INTERNAL = 13
    UNAVAILABLE = 14


#: request-flags bit: an 8-byte packed deadline word follows the method
REQ_FLAG_DEADLINE = 0x01


@dataclass(frozen=True)
class Frame:
    frame_type: int
    call_id: int
    status: int
    method: str
    message: bytes
    #: WIRE_STANDARD (0) or WIRE_FIXED (2) — how ``message`` is encoded
    wire_mode: int = WIRE_STANDARD
    #: packed deadline + lane (repro.runtime.overload), 0 when the
    #: request carried no deadline word
    deadline_word: int = 0


_HEADER = struct.Struct("<BIBH")
_PREFIX = struct.Struct(">BI")  # gRPC's 5-byte prefix: compressed flag + u32 BE length
_DEADLINE = struct.Struct("<Q")


def request_frame_size(
    method_len: int, message_size: int, deadline: bool = False
) -> int:
    """Total bytes of a request frame carrying ``message_size`` payload
    bytes — what a caller allocates before :func:`write_request_header`.
    ``deadline`` reserves the 8-byte deadline word."""
    size = _HEADER.size + method_len + _PREFIX.size + message_size
    return size + _DEADLINE.size if deadline else size


def response_frame_size(message_size: int) -> int:
    """Total bytes of a response frame carrying ``message_size`` payload
    bytes."""
    return _HEADER.size + _PREFIX.size + message_size


def write_request_header(
    buf, call_id: int, method: bytes, message_size: int,
    wire_mode: int = WIRE_STANDARD, deadline_word: int = 0,
) -> int:
    """Write a request frame's header + method + message prefix into
    ``buf`` (a writable buffer of at least ``request_frame_size`` bytes);
    returns the offset where the message payload belongs.

    The reserve-then-fill half of the zero-copy send path: the serializer
    emits the payload in place at the returned offset instead of handing
    over a ``bytes`` object for concatenation.  A non-zero
    ``deadline_word`` sets REQ_FLAG_DEADLINE and spends 8 bytes after the
    method path (size the buffer with ``deadline=True``).
    """
    req_flags = REQ_FLAG_DEADLINE if deadline_word else 0
    _HEADER.pack_into(buf, 0, FrameType.REQUEST, call_id, req_flags, len(method))
    pos = _HEADER.size
    end = pos + len(method)
    buf[pos:end] = method
    if deadline_word:
        _DEADLINE.pack_into(buf, end, deadline_word)
        end += _DEADLINE.size
    _PREFIX.pack_into(buf, end, wire_mode, message_size)
    return end + _PREFIX.size


def write_response_header(
    buf, call_id: int, status: int, message_size: int,
    wire_mode: int = WIRE_STANDARD,
) -> int:
    """Response analog of :func:`write_request_header`; returns the offset
    where the message payload belongs."""
    _HEADER.pack_into(buf, 0, FrameType.RESPONSE, call_id, status, 0)
    _PREFIX.pack_into(buf, _HEADER.size, wire_mode, message_size)
    return _HEADER.size + _PREFIX.size


def encode_request(
    call_id: int, method: str, message: bytes, deadline_word: int = 0
) -> bytes:
    m = method.encode("utf-8")
    buf = bytearray(
        request_frame_size(len(m), len(message), deadline=bool(deadline_word))
    )
    pos = write_request_header(buf, call_id, m, len(message),
                               deadline_word=deadline_word)
    buf[pos:] = message
    return bytes(buf)


def encode_response(call_id: int, status: int, message: bytes) -> bytes:
    buf = bytearray(response_frame_size(len(message)))
    pos = write_response_header(buf, call_id, status, len(message))
    buf[pos:] = message
    return bytes(buf)


def encode_setup(layout_hash: str) -> bytes:
    """Wire-mode negotiation request: the layout hash rides in the method
    field (it is connection metadata, not a message payload)."""
    h = layout_hash.encode("ascii")
    buf = bytearray(_HEADER.size + len(h) + _PREFIX.size)
    _HEADER.pack_into(buf, 0, FrameType.SETUP, 0, 0, len(h))
    buf[_HEADER.size : _HEADER.size + len(h)] = h
    _PREFIX.pack_into(buf, _HEADER.size + len(h), 0, 0)
    return bytes(buf)


def encode_overload_detail(stage: str, retry_after_ticks: int = 0) -> bytes:
    """Error-detail payload for RESOURCE_EXHAUSTED / DEADLINE_EXCEEDED
    responses: names the stage that shed or dropped the request and (for
    sheds) the server's retry-after hint in client drive iterations."""
    if retry_after_ticks:
        return f"stage={stage};retry_after_ticks={retry_after_ticks}".encode()
    return f"stage={stage}".encode()


def parse_overload_detail(data: bytes) -> tuple[str, int]:
    """Inverse of :func:`encode_overload_detail`: (stage, retry_after).
    Unknown payloads decode to ("", 0) — the detail is advisory."""
    stage, ticks = "", 0
    for part in data.decode("utf-8", "replace").split(";"):
        key, _, value = part.partition("=")
        if key == "stage":
            stage = value
        elif key == "retry_after_ticks" and value.isdigit():
            ticks = int(value)
    return stage, ticks


def encode_setup_ack(status: int) -> bytes:
    """Negotiation answer: status OK enables WIRE_FIXED on the
    connection; anything else keeps it on standard wire."""
    buf = bytearray(_HEADER.size + _PREFIX.size)
    _HEADER.pack_into(buf, 0, FrameType.SETUP_ACK, 0, status, 0)
    _PREFIX.pack_into(buf, _HEADER.size, 0, 0)
    return bytes(buf)


class FrameDecoder:
    """Incremental decoder over a byte stream (handles short reads)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            frame = self._try_decode()
            if frame is None:
                return
            yield frame

    def _try_decode(self) -> Frame | None:
        buf = self._buf
        if len(buf) < _HEADER.size:
            return None
        frame_type, call_id, status, method_len = _HEADER.unpack_from(buf, 0)
        if frame_type not in (
            FrameType.REQUEST,
            FrameType.RESPONSE,
            FrameType.SETUP,
            FrameType.SETUP_ACK,
        ):
            raise FramingError(f"unknown frame type {frame_type}")
        pos = _HEADER.size
        deadline_len = (
            _DEADLINE.size
            if frame_type == FrameType.REQUEST and status & REQ_FLAG_DEADLINE
            else 0
        )
        if len(buf) < pos + method_len + deadline_len + _PREFIX.size:
            return None
        method = bytes(buf[pos : pos + method_len]).decode("utf-8")
        pos += method_len
        deadline_word = 0
        if deadline_len:
            (deadline_word,) = _DEADLINE.unpack_from(buf, pos)
            pos += deadline_len
        wire_mode, msg_len = _PREFIX.unpack_from(buf, pos)
        if wire_mode not in (WIRE_STANDARD, 1, WIRE_FIXED):
            raise FramingError(f"bad compressed flag {wire_mode}")
        if wire_mode == 1:
            raise FramingError("compressed messages are not supported")
        pos += _PREFIX.size
        if len(buf) < pos + msg_len:
            return None
        message = bytes(buf[pos : pos + msg_len])
        del buf[: pos + msg_len]
        return Frame(frame_type, call_id, status, method, message, wire_mode,
                     deadline_word)
