"""xRPC wire framing.

gRPC proper rides on HTTP/2; what the offload architecture needs from it
is (a) length-prefixed protobuf messages — gRPC's 5-byte message prefix —
and (b) multiplexed unary calls with a method path and a status.  We keep
gRPC's message prefix verbatim (compressed flag + u32 big-endian length)
and replace the HTTP/2 stream machinery with an explicit frame header, a
simplification documented in DESIGN.md.

Frame layout::

    u8   frame_type        # REQUEST / RESPONSE
    u32  call_id           # client-chosen stream id (odd, increasing)
    u8   status            # gRPC status code (0 = OK); responses only
    u16  method_len        # requests only
    ...  method path       # "/pkg.Service/Method"
    u8   compressed_flag   # gRPC message prefix
    u32  message_len       # big-endian, as in gRPC
    ...  message bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "FrameType",
    "StatusCode",
    "Frame",
    "FramingError",
    "encode_request",
    "encode_response",
    "request_frame_size",
    "response_frame_size",
    "write_request_header",
    "write_response_header",
    "FrameDecoder",
]


class FramingError(RuntimeError):
    """Malformed frame."""


class FrameType:
    REQUEST = 1
    RESPONSE = 2


class StatusCode:
    """The gRPC status codes the layer uses."""

    OK = 0
    UNKNOWN = 2
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    ABORTED = 10
    UNIMPLEMENTED = 12
    INTERNAL = 13
    UNAVAILABLE = 14


@dataclass(frozen=True)
class Frame:
    frame_type: int
    call_id: int
    status: int
    method: str
    message: bytes


_HEADER = struct.Struct("<BIBH")
_PREFIX = struct.Struct(">BI")  # gRPC's 5-byte prefix: compressed flag + u32 BE length


def request_frame_size(method_len: int, message_size: int) -> int:
    """Total bytes of a request frame carrying ``message_size`` payload
    bytes — what a caller allocates before :func:`write_request_header`."""
    return _HEADER.size + method_len + _PREFIX.size + message_size


def response_frame_size(message_size: int) -> int:
    """Total bytes of a response frame carrying ``message_size`` payload
    bytes."""
    return _HEADER.size + _PREFIX.size + message_size


def write_request_header(buf, call_id: int, method: bytes, message_size: int) -> int:
    """Write a request frame's header + method + message prefix into
    ``buf`` (a writable buffer of at least ``request_frame_size`` bytes);
    returns the offset where the message payload belongs.

    The reserve-then-fill half of the zero-copy send path: the serializer
    emits the payload in place at the returned offset instead of handing
    over a ``bytes`` object for concatenation.
    """
    _HEADER.pack_into(buf, 0, FrameType.REQUEST, call_id, 0, len(method))
    pos = _HEADER.size
    end = pos + len(method)
    buf[pos:end] = method
    _PREFIX.pack_into(buf, end, 0, message_size)
    return end + _PREFIX.size


def write_response_header(buf, call_id: int, status: int, message_size: int) -> int:
    """Response analog of :func:`write_request_header`; returns the offset
    where the message payload belongs."""
    _HEADER.pack_into(buf, 0, FrameType.RESPONSE, call_id, status, 0)
    _PREFIX.pack_into(buf, _HEADER.size, 0, message_size)
    return _HEADER.size + _PREFIX.size


def encode_request(call_id: int, method: str, message: bytes) -> bytes:
    m = method.encode("utf-8")
    buf = bytearray(request_frame_size(len(m), len(message)))
    pos = write_request_header(buf, call_id, m, len(message))
    buf[pos:] = message
    return bytes(buf)


def encode_response(call_id: int, status: int, message: bytes) -> bytes:
    buf = bytearray(response_frame_size(len(message)))
    pos = write_response_header(buf, call_id, status, len(message))
    buf[pos:] = message
    return bytes(buf)


class FrameDecoder:
    """Incremental decoder over a byte stream (handles short reads)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            frame = self._try_decode()
            if frame is None:
                return
            yield frame

    def _try_decode(self) -> Frame | None:
        buf = self._buf
        if len(buf) < _HEADER.size:
            return None
        frame_type, call_id, status, method_len = _HEADER.unpack_from(buf, 0)
        if frame_type not in (FrameType.REQUEST, FrameType.RESPONSE):
            raise FramingError(f"unknown frame type {frame_type}")
        pos = _HEADER.size
        if len(buf) < pos + method_len + _PREFIX.size:
            return None
        method = bytes(buf[pos : pos + method_len]).decode("utf-8")
        pos += method_len
        compressed, msg_len = _PREFIX.unpack_from(buf, pos)
        if compressed not in (0, 1):
            raise FramingError(f"bad compressed flag {compressed}")
        if compressed:
            raise FramingError("compressed messages are not supported")
        pos += _PREFIX.size
        if len(buf) < pos + msg_len:
            return None
        message = bytes(buf[pos : pos + msg_len])
        del buf[: pos + msg_len]
        return Frame(frame_type, call_id, status, method, message)
