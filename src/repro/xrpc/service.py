"""Service definitions, stubs, and introspection codegen.

Plays the role of protoc's gRPC plugin output (``*_pb2_grpc.py`` /
``.grpc.pb.cc``): client stub classes with one method per RPC, servicer
dispatch tables, and — for the offload path — the deterministic
procedure-ID assignment the paper's "introspection code" generates
(§V-D: "mapping procedure IDs to the service's callback function").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.proto import Message, MessageFactory
from repro.proto.descriptor import MethodDescriptor, ServiceDescriptor

__all__ = [
    "ServiceError",
    "method_path",
    "assign_method_ids",
    "MethodBinding",
    "build_dispatch_table",
    "make_stub_class",
]


class ServiceError(RuntimeError):
    """Service registration/dispatch failure."""


def method_path(service: ServiceDescriptor, method: MethodDescriptor) -> str:
    """gRPC-style full method path: ``/pkg.Service/Method``."""
    return f"/{service.full_name}/{method.name}"


def assign_method_ids(service: ServiceDescriptor, base: int = 1) -> dict[str, int]:
    """Deterministic procedure IDs, identical wherever they are computed
    (host compatibility layer and DPU front end independently derive the
    same table from the same service definition)."""
    return {
        method_path(service, m): base + i
        for i, m in enumerate(sorted(service.methods, key=lambda m: m.name))
    }


@dataclass(frozen=True)
class MethodBinding:
    """One resolved RPC method: descriptors plus the servicer callable."""

    path: str
    method: MethodDescriptor
    handler: Callable[[Any, Any], Message]  # (request, context) -> response


def build_dispatch_table(
    service: ServiceDescriptor, servicer: object
) -> dict[str, MethodBinding]:
    """Bind a servicer object (one attribute per RPC name) to the service
    definition; raises if a method implementation is missing."""
    table: dict[str, MethodBinding] = {}
    for m in service.methods:
        handler = getattr(servicer, m.name, None)
        if handler is None or not callable(handler):
            raise ServiceError(
                f"servicer {type(servicer).__name__} does not implement {m.name!r}"
            )
        table[method_path(service, m)] = MethodBinding(method_path(service, m), m, handler)
    return table


def make_stub_class(service: ServiceDescriptor, factory: MessageFactory) -> type:
    """Generate a client stub class for ``service``.

    The stub mirrors generated gRPC stubs: construct with a channel, then
    ``stub.Method(request)`` (synchronous, drives the channel's event
    loop) or ``stub.Method.future(request, callback)`` (continuation
    style, §III-D).
    """

    class _BoundMethod:
        def __init__(self, channel, method: MethodDescriptor, path: str) -> None:
            self._channel = channel
            self._method = method
            self._path = path
            self._response_cls = factory.get_class(method.output_type)

        def __call__(self, request: Message):
            self._check(request)
            return self._channel.call_sync(self._path, request, self._response_cls)

        def future(self, request: Message, callback) -> None:
            self._check(request)
            self._channel.call(self._path, request, self._response_cls, callback)

        def _check(self, request: Message) -> None:
            expected = self._method.input_type.full_name
            got = getattr(getattr(request, "DESCRIPTOR", None), "full_name", None)
            if got != expected:
                raise ServiceError(
                    f"{self._path}: expected {expected}, got {got or type(request).__name__}"
                )

    namespace: dict[str, Any] = {"__doc__": f"Generated stub for {service.full_name}."}

    def make_init():
        def __init__(self, channel) -> None:
            self._channel = channel
            for m in service.methods:
                setattr(
                    self, m.name, _BoundMethod(channel, m, method_path(service, m))
                )

        return __init__

    namespace["__init__"] = make_init()
    return type(f"{service.name}Stub", (), namespace)
