"""Streaming telemetry: the pipeline half of the closed observability loop.

PR 5 made every request's latency attributable to a stage; this module
makes that signal *continuous*.  A :class:`TelemetryHub` attaches to a
:class:`~repro.obs.trace.TraceCollector` as its streaming sink, so every
:class:`~repro.obs.trace.StageEvent` is folded into the current
observation window at record time — O(1) per event, no ring rescans —
and every ``window_ticks`` event-loop passes the hub seals the window
into an immutable :class:`TelemetrySnapshot`:

* per-lane completion latency with exact p50/p95/p99 (the latency the
  SLO layer targets),
* per-stage gap attribution — where the window's microseconds went —
  plus the share *delta* against the previous window (nanoPU's thesis:
  the tail moves between handoffs, so the interesting signal is the
  derivative),
* rate counters for every ``(component, stage)`` pair, which covers the
  overload stages (shed / deadline_expired / degrade / ...) for free,
* deltas from attachable counter *sources* (engine/endpoint/codec
  counters that are not stage events).

Consumers subscribe with :meth:`TelemetryHub.add_listener`; the SLO
tracker (:mod:`repro.obs.slo`) and the autotuner
(:mod:`repro.runtime.autotune`) are both pure functions of these
snapshots.  Cross-process runs need no extra plumbing: events merged via
:func:`~repro.obs.trace.import_events` are offered to the sink in
timestamp order, so a parent-side hub aggregates child traffic the same
way it aggregates local traffic (docs/AUTOTUNE.md#telemetry).
"""

from __future__ import annotations

from collections import deque

from .trace import Stage, TraceCollector

__all__ = [
    "TelemetryHub",
    "TelemetrySnapshot",
    "exact_quantile",
    "render_dashboard",
]


def exact_quantile(sorted_values, q: float) -> float:
    """Exact ``q``-quantile of an ascending list, linear interpolation
    between ranks (0 when empty).  Exact — not bucketed — because the
    autotuner compares windows against each other and bucket edges would
    quantize away the differences it steers by."""
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


#: stages that complete a request from the hub's point of view (the
#: server edge's ``respond`` for server-side tracing, the client edge's
#: ``xrpc_complete`` / ``response_deliver`` when the client is traced too)
_TERMINAL_STAGES = frozenset({Stage.RESPOND, Stage.RESPONSE_DELIVER, "xrpc_complete"})


class _LiveEntry:
    """One in-flight request's accumulating state (pre-completion)."""

    __slots__ = ("first_ts", "prev_end", "lane", "gaps", "events", "window")

    def __init__(self, ts: float, window: int) -> None:
        self.first_ts = ts
        self.prev_end = None
        self.lane = None
        self.gaps: list = []          # (component, stage, seconds)
        self.events = 0
        self.window = window          # window of the first event (staleness)

    def merge(self, other: "_LiveEntry") -> None:
        """Fold another half of the same request in (the client-side and
        server-side contexts share a late-bound tid; whichever entry
        registered second folds into the first)."""
        self.first_ts = min(self.first_ts, other.first_ts)
        if self.prev_end is None or (
            other.prev_end is not None and other.prev_end > self.prev_end
        ):
            self.prev_end = other.prev_end
        if self.lane is None:
            self.lane = other.lane
        self.gaps.extend(other.gaps)
        self.events += other.events
        self.window = min(self.window, other.window)


class TelemetrySnapshot:
    """One sealed observation window — everything downstream consumers
    (SLO tracker, autotuner, dashboard) are allowed to see."""

    __slots__ = (
        "window", "ticks", "duration_s", "epoch_id",
        "completed", "completed_by_lane", "lane_latency_us",
        "stage_counts", "component_stage_counts",
        "gap_seconds", "gap_share", "gap_share_delta",
        "source_totals", "source_deltas", "live_entries",
    )

    def __init__(self, **kw) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    # -- convenience accessors (what the SLO specs read) -----------------

    def lane_p99_us(self, lane: int) -> float:
        stats = self.lane_latency_us.get(lane)
        return stats["p99"] if stats else 0.0

    def goodput_per_tick(self) -> float:
        return self.completed / self.ticks if self.ticks else 0.0

    def stage_count(self, stage: str) -> int:
        return self.stage_counts.get(stage, 0)

    def deadline_miss_rate(self) -> float:
        """Fraction of this window's outcomes that missed: sheds plus
        deadline expiries over (those + completions)."""
        missed = self.stage_count(Stage.SHED) + self.stage_count(
            Stage.DEADLINE_EXPIRED
        )
        outcomes = missed + self.completed
        return missed / outcomes if outcomes else 0.0

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "ticks": self.ticks,
            "completed": self.completed,
            "completed_by_lane": dict(self.completed_by_lane),
            "lane_latency_us": {k: dict(v) for k, v in self.lane_latency_us.items()},
            "stage_counts": dict(self.stage_counts),
            "gap_share": dict(self.gap_share),
            "source_deltas": {k: dict(v) for k, v in self.source_deltas.items()},
        }


class TelemetryHub:
    """Streaming aggregator: collector sink in, windowed snapshots out.

    Attach with ``collector.attach_sink(hub)`` (or pass the collector
    here), drive with :meth:`on_tick` from the event loop, and read
    :attr:`last` or subscribe via :meth:`add_listener`.

    ``window_ticks`` sets the observation cadence — it is the autotuner's
    decision period, so it trades reaction speed against statistical
    noise per window.  ``max_windows`` bounds retained history;
    ``stale_windows`` bounds how long an in-flight entry may live before
    the hub gives up on its completion (requests dropped without any
    terminal stage must not leak)."""

    def __init__(self, collector: TraceCollector | None = None,
                 window_ticks: int = 64, max_windows: int = 32,
                 stale_windows: int = 4,
                 latency_exporter=None) -> None:
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        self.window_ticks = window_ticks
        self.max_windows = max_windows
        self.stale_windows = stale_windows
        #: optional StageLatencyExporter — completed requests' gaps are
        #: fed into its registry histograms, so `repro metrics` and the
        #: hub expose the same data through one surface.
        self.latency_exporter = latency_exporter
        self.collector = collector
        self.events_seen = 0
        self.windows_closed = 0
        self.completed_total = 0
        self.snapshots: deque = deque(maxlen=max_windows)
        self._listeners: list = []
        self._sources: dict[str, object] = {}
        self._source_last: dict[str, dict] = {}
        self._gauges = None
        # -- current-window accumulators ---------------------------------
        self._tick = 0
        self._window = 0
        self._completed = 0
        self._completed_by_lane: dict = {}
        self._lane_lat: dict = {}          # lane -> [latency_us, ...]
        self._stage_counts: dict = {}
        self._comp_stage_counts: dict = {}
        self._gap_seconds: dict = {}       # stage -> total seconds
        self._prev_gap_share: dict = {}
        # -- live (in-flight) request entries -----------------------------
        self._by_tid: dict = {}
        self._by_ctx: dict = {}
        if collector is not None:
            collector.attach_sink(self)

    # -- wiring ----------------------------------------------------------

    def add_listener(self, fn) -> None:
        """``fn(snapshot)`` fires on every window close, in add order."""
        self._listeners.append(fn)

    def add_source(self, name: str, fn) -> None:
        """Attach a counter source: ``fn()`` returns ``{name: value}``;
        the hub records per-window deltas (and absolute totals) for it.
        This is how the overload / endpoint / codec counters that are
        not stage events join the snapshot surface."""
        self._sources[name] = fn
        self._source_last[name] = dict(fn())

    def bind_registry(self, registry, prefix: str = "telemetry"):
        """Expose rolling state as gauges in a
        :class:`~repro.metrics.registry.MetricsRegistry` — one scrape
        surface for trace-derived and counter-derived signals."""
        self._gauges = {
            "windows": registry.gauge(
                f"{prefix}_windows_closed", "observation windows sealed"),
            "events": registry.gauge(
                f"{prefix}_events_streamed", "stage events folded into windows"),
            "goodput": registry.gauge(
                f"{prefix}_goodput_per_tick", "completions per tick, last window"),
            "lane_p99": registry.gauge(
                f"{prefix}_lane_p99_us", "per-lane p99 latency, last window",
                ("lane",)),
            "inflight": registry.gauge(
                f"{prefix}_live_entries", "in-flight request entries held"),
        }
        return registry

    # -- the streaming sink (called from StageRecorder.event) ------------

    def offer(self, ev) -> None:
        """Fold one stage event into the current window.  O(1)."""
        self.events_seen += 1
        stage = ev.stage
        self._stage_counts[stage] = self._stage_counts.get(stage, 0) + 1
        key = (ev.component, stage)
        self._comp_stage_counts[key] = self._comp_stage_counts.get(key, 0) + 1
        ctx = ev.ctx
        if ctx is None:
            return
        # -- locate (or create) the live entry: tid key wins, identity
        #    key covers the pre-bind stages (enqueue/seal happen before
        #    transmit binds the id).
        tid = ctx.tid
        entry = None
        if tid is not None:
            entry = self._by_tid.get(tid)
        ident = id(ctx)
        by_ident = self._by_ctx.get(ident)
        if by_ident is not None and entry is not None and by_ident is not entry:
            entry.merge(by_ident)
            del self._by_ctx[ident]
        elif by_ident is not None and entry is None:
            entry = by_ident
            if tid is not None:
                # the id just bound: promote from identity to tid keying
                self._by_tid[tid] = entry
                del self._by_ctx[ident]
        if entry is None:
            if stage in _TERMINAL_STAGES:
                # A terminal stage with no live entry: the request already
                # completed under an earlier terminal (response_deliver
                # before the front's respond).  Starting a new entry here
                # would just park a one-event orphan until eviction.
                return
            entry = _LiveEntry(ev.ts, self._window)
            if tid is not None:
                self._by_tid[tid] = entry
            else:
                self._by_ctx[ident] = entry
        # -- gap attribution, streaming mirror of RequestTimeline.stage_gaps
        if ev.dur:
            entry.gaps.append((ev.component, stage, ev.dur))
        elif entry.prev_end is not None:
            entry.gaps.append(
                (ev.component, stage, max(0.0, ev.ts - entry.prev_end))
            )
        end = ev.ts + ev.dur
        if entry.prev_end is None or end > entry.prev_end:
            entry.prev_end = end
        entry.events += 1
        if entry.lane is None and "lane" in ctx.attrs:
            entry.lane = ctx.attrs["lane"]
        if stage in _TERMINAL_STAGES and entry.events >= 2:
            self._complete(entry, ev, tid, ident)

    def _complete(self, entry, ev, tid, ident) -> None:
        lane = entry.lane if entry.lane is not None else 0
        latency_us = (ev.ts + ev.dur - entry.first_ts) * 1e6
        self._completed += 1
        self.completed_total += 1
        self._completed_by_lane[lane] = self._completed_by_lane.get(lane, 0) + 1
        self._lane_lat.setdefault(lane, []).append(latency_us)
        for _component, stage, seconds in entry.gaps:
            self._gap_seconds[stage] = self._gap_seconds.get(stage, 0.0) + seconds
        if self.latency_exporter is not None:
            for _component, stage, seconds in entry.gaps:
                self.latency_exporter.stage_hist.labels(stage).observe(seconds)
            self.latency_exporter.request_hist.observe(latency_us * 1e-6)
            self.latency_exporter.observed += 1
        if tid is not None:
            self._by_tid.pop(tid, None)
        self._by_ctx.pop(ident, None)

    # -- windowing (called from the event loop) ---------------------------

    def progress(self, budget: int | None = None) -> int:
        """Pollable adapter: register the hub on a
        :class:`~repro.runtime.engine.ProgressEngine` and every engine
        pass becomes one hub tick — windows seal on the reactor's own
        cadence, no side loop."""
        self.on_tick()
        return 0

    def on_tick(self, tick_us: float | None = None) -> TelemetrySnapshot | None:
        """One event-loop pass; seals and returns a snapshot every
        ``window_ticks`` calls (None otherwise).  ``tick_us`` sizes the
        reported window duration; omitted, durations are in ticks."""
        self._tick += 1
        if self._tick % self.window_ticks:
            return None
        return self._seal(tick_us)

    def _seal(self, tick_us: float | None) -> TelemetrySnapshot:
        total_gap = sum(self._gap_seconds.values())
        gap_share = {
            stage: seconds / total_gap
            for stage, seconds in self._gap_seconds.items()
        } if total_gap > 0 else {}
        gap_delta = {
            stage: share - self._prev_gap_share.get(stage, 0.0)
            for stage, share in gap_share.items()
        }
        for stage, prev in self._prev_gap_share.items():
            if stage not in gap_share:
                gap_delta[stage] = -prev
        lane_latency = {}
        for lane, values in self._lane_lat.items():
            values.sort()
            lane_latency[lane] = {
                "count": len(values),
                "p50": exact_quantile(values, 0.50),
                "p95": exact_quantile(values, 0.95),
                "p99": exact_quantile(values, 0.99),
                "mean": sum(values) / len(values),
            }
        totals: dict = {}
        deltas: dict = {}
        for name, fn in self._sources.items():
            current = dict(fn())
            last = self._source_last[name]
            totals[name] = current
            deltas[name] = {
                k: v - last.get(k, 0) for k, v in current.items()
            }
            self._source_last[name] = current
        snap = TelemetrySnapshot(
            window=self._window,
            ticks=self.window_ticks,
            duration_s=(self.window_ticks * tick_us * 1e-6) if tick_us else 0.0,
            epoch_id=self.collector.epoch_id if self.collector is not None else 0,
            completed=self._completed,
            completed_by_lane=dict(self._completed_by_lane),
            lane_latency_us=lane_latency,
            stage_counts=dict(self._stage_counts),
            component_stage_counts=dict(self._comp_stage_counts),
            gap_seconds=dict(self._gap_seconds),
            gap_share=gap_share,
            gap_share_delta=gap_delta,
            source_totals=totals,
            source_deltas=deltas,
            live_entries=len(self._by_tid) + len(self._by_ctx),
        )
        self.snapshots.append(snap)
        self.windows_closed += 1
        self._prev_gap_share = gap_share
        # reset window accumulators
        self._window += 1
        self._completed = 0
        self._completed_by_lane = {}
        self._lane_lat = {}
        self._stage_counts = {}
        self._comp_stage_counts = {}
        self._gap_seconds = {}
        self._evict_stale()
        if self._gauges is not None:
            g = self._gauges
            g["windows"].set(self.windows_closed)
            g["events"].set(self.events_seen)
            g["goodput"].set(snap.goodput_per_tick())
            for lane, stats in snap.lane_latency_us.items():
                g["lane_p99"].labels(str(lane)).set(stats["p99"])
            g["inflight"].set(snap.live_entries)
        for fn in self._listeners:
            fn(snap)
        return snap

    def _evict_stale(self) -> None:
        """Drop in-flight entries whose request will clearly never
        complete (shed upstream of any terminal stage, client vanished):
        unbounded live-entry growth would be a leak under overload."""
        horizon = self._window - self.stale_windows
        if horizon <= 0:
            return
        for table in (self._by_tid, self._by_ctx):
            stale = [k for k, e in table.items() if e.window < horizon]
            for k in stale:
                del table[k]

    @property
    def last(self) -> TelemetrySnapshot | None:
        return self.snapshots[-1] if self.snapshots else None


# ---------------------------------------------------------------------------
# Dashboard rendering (`repro top --live`, `repro tune`)
# ---------------------------------------------------------------------------


def _burn_gauge(burn: float, width: int = 20) -> str:
    """A bar that fills at burn=2x (the fast-burn alert threshold)."""
    filled = min(width, int(round(width * burn / 2.0)))
    return "█" * filled + "·" * (width - filled)


def render_dashboard(hub: TelemetryHub, slo=None, tuner=None,
                     lane_names=None) -> str:
    """One refreshable text frame: stage table, SLO burn gauges, last
    tuner actions — the `repro top --live` / `repro tune` surface."""
    snap = hub.last
    lines = []
    if snap is None:
        return "telemetry: no windows sealed yet\n"
    lines.append(
        f"window {snap.window}  ticks/window {snap.ticks}  "
        f"completed {snap.completed}  goodput {snap.goodput_per_tick():.3f}/tick  "
        f"in-flight {snap.live_entries}"
    )
    lines.append("")
    lines.append(f"{'lane':<10} {'count':>6} {'p50 µs':>10} {'p95 µs':>10} {'p99 µs':>10}")
    for lane in sorted(snap.lane_latency_us):
        stats = snap.lane_latency_us[lane]
        name = (lane_names or {}).get(lane, str(lane))
        lines.append(
            f"{name:<10} {stats['count']:>6} {stats['p50']:>10.1f} "
            f"{stats['p95']:>10.1f} {stats['p99']:>10.1f}"
        )
    lines.append("")
    lines.append(f"{'stage':<20} {'count':>7} {'gap share':>10} {'Δ share':>9}")
    by_share = sorted(
        snap.gap_share.items(), key=lambda kv: kv[1], reverse=True
    )
    for stage, share in by_share[:12]:
        delta = snap.gap_share_delta.get(stage, 0.0)
        lines.append(
            f"{stage:<20} {snap.stage_count(stage):>7} {share:>9.1%} {delta:>+8.1%}"
        )
    overload = [
        (stage, n) for stage, n in sorted(snap.stage_counts.items())
        if stage in (Stage.SHED, Stage.DEADLINE_EXPIRED, Stage.DEGRADE,
                     Stage.RECOVER, Stage.BREAKER_FALLBACK, Stage.ANOMALY)
        and n
    ]
    if overload:
        lines.append("")
        lines.append("overload: " + "  ".join(f"{s}={n}" for s, n in overload))
    if slo is not None:
        lines.append("")
        lines.append(f"{'SLO':<24} {'value':>10} {'target':>10} {'burn':>6}  budget")
        for st in slo.status():
            lines.append(
                f"{st['name']:<24} {st['value']:>10.2f} {st['target']:>10.2f} "
                f"{st['burn_short']:>5.2f}x  [{_burn_gauge(st['burn_short'])}]"
                + ("  BURNING" if st["burning"] else "")
            )
    if tuner is not None and tuner.decisions:
        lines.append("")
        lines.append("last tuner actions:")
        for d in list(tuner.decisions)[-5:]:
            lines.append("  " + d.render())
    return "\n".join(lines) + "\n"
