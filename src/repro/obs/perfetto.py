"""Chrome/Perfetto ``trace_event`` JSON export.

Turns stitched request timelines into the Trace Event Format that
``ui.perfetto.dev`` (and ``chrome://tracing``) load directly:

* each *component* becomes a named thread (``M`` metadata events), so
  the UI shows one swim-lane per datapath layer;
* timed stages (dispatch, deserialize, callback) become complete ``X``
  events with real durations;
* instant stages become ``i`` events on their component's lane;
* each request becomes an async ``b``/``e`` pair spanning its first to
  last stage, so the whole request reads as one bracket across lanes.

Timestamps are microseconds (the format's unit).  The module also ships
:func:`validate_trace_events` — the structural checker the CI trace
smoke job runs against exported files (well-formed JSON, monotonic
sorted timestamps, matched async begin/end pairs).
"""

from __future__ import annotations

import json

__all__ = ["to_trace_events", "write_trace", "validate_trace_events"]

_PID = 1


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_trace_events(timelines, global_events=(), process_name="repro") -> dict:
    """Build the ``{"traceEvents": [...]}`` document."""
    components: dict[str, int] = {}

    def lane(component: str) -> int:
        tid = components.get(component)
        if tid is None:
            tid = len(components) + 1
            components[component] = tid
        return tid

    events: list[dict] = []
    for seq, tl in enumerate(timelines):
        args = {"trace_id": str(tl.tid)}
        args.update({k: str(v) for k, v in tl.attrs().items()})
        first_lane = lane(tl.events[0].component)
        events.append({
            "name": f"request {tl.tid}", "cat": "request", "ph": "b",
            "id": seq, "ts": _us(tl.start), "pid": _PID, "tid": first_lane,
            "args": args,
        })
        for ev in tl.events:
            base = {
                "name": ev.stage, "cat": "stage", "ts": _us(ev.ts),
                "pid": _PID, "tid": lane(ev.component),
                "args": {"trace_id": str(tl.tid),
                         **{k: str(v) for k, v in (ev.attrs or {}).items()}},
            }
            if ev.dur:
                base["ph"] = "X"
                base["dur"] = _us(ev.dur)
            else:
                base["ph"] = "i"
                base["s"] = "t"
            events.append(base)
        events.append({
            "name": f"request {tl.tid}", "cat": "request", "ph": "e",
            "id": seq, "ts": _us(tl.end), "pid": _PID, "tid": first_lane,
        })
    for ev in global_events:
        events.append({
            "name": ev.stage, "cat": "global", "ph": "i", "s": "g",
            "ts": _us(ev.ts), "pid": _PID, "tid": lane(ev.component),
            "args": {k: str(v) for k, v in (ev.attrs or {}).items()},
        })
    events.sort(key=lambda e: e["ts"])
    meta = [{
        "name": "process_name", "ph": "M", "pid": _PID, "ts": 0,
        "args": {"name": process_name},
    }]
    for component, tid in sorted(components.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "ts": 0, "args": {"name": component},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_trace(path, doc: dict) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def validate_trace_events(doc) -> list[str]:
    """Structural validation of a trace_event document; returns the list
    of problems (empty = valid).  Checks the properties the CI smoke job
    asserts: well-formed shape, non-negative numeric timestamps that are
    monotonically non-decreasing over the data events, durations on
    ``X`` events only, and every async ``b`` matched by exactly one
    ``e`` with the same ``(cat, id)`` at a later-or-equal timestamp."""
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a traceEvents list"]
    last_ts = None
    opened: dict[tuple, float] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if ph not in ("B", "E", "X", "i", "I", "b", "e", "n", "M", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if ph == "M":
            continue  # metadata carries no timeline semantics
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} < previous {last_ts} (unsorted)")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0, got {dur!r}")
        elif "dur" in ev:
            errors.append(f"{where}: dur on non-X phase {ph!r}")
        if ph == "b":
            key = (ev.get("cat"), ev.get("id"))
            if key in opened:
                errors.append(f"{where}: async begin {key} already open")
            opened[key] = ts
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"))
            begin = opened.pop(key, None)
            if begin is None:
                errors.append(f"{where}: async end {key} without begin")
            elif ts < begin:
                errors.append(f"{where}: async end {key} before its begin")
    for key in opened:
        errors.append(f"async begin {key} never ended")
    return errors
