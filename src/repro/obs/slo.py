"""SLO tracking over telemetry windows: burn rates, anomalies, events.

The telemetry hub (:mod:`repro.obs.telemetry`) answers *what is
happening*; this module answers *is it acceptable* — the judgement the
autotuner's rollback logic and the dashboard's gauges both consume.

**Specs** are declarative: a :class:`SloSpec` names a signal (a latency
lane's p99, the goodput floor, the deadline-miss rate), a target, and an
error budget — the fraction of observation windows allowed to violate
the target.  **Burn rate** is the SRE formulation: over a horizon of
``h`` windows, ``burn = violation_rate / budget``; burn 1x spends the
budget exactly, burn 2x spends it twice as fast.  The tracker evaluates
every spec over a *short* and a *long* horizon and alerts only when both
burn (the standard multi-window guard against one noisy window paging
and against slow leaks hiding inside a long average).

**Anomalies** are a different failure shape: a stage whose gap suddenly
detaches from its own history, before any SLO notices.  The detector
keeps a rolling window of each stage's per-window mean gap and flags
values outside ``median ± k·MAD`` (median absolute deviation — robust to
the very outliers it hunts).

Both produce typed :class:`SloEvent` records, and — when given a
recorder — emit them into the trace stream as first-class stages
(``slo_burn`` / ``slo_recovered`` / ``stage_anomaly``), so a Perfetto
export shows the judgement layer reacting on the same timeline as the
datapath it judges (docs/AUTOTUNE.md#slo).
"""

from __future__ import annotations

from collections import deque

from .trace import Stage

__all__ = [
    "SloSpec",
    "SloEvent",
    "SloTracker",
    "AnomalyDetector",
    "rolling_median",
]

#: spec kinds and the snapshot signal each one reads
KIND_LANE_P99 = "lane_p99_us"        # lane p99 must stay under target µs
KIND_GOODPUT = "goodput_per_tick"    # completions/tick must stay over target
KIND_MISS_RATE = "deadline_miss_rate"  # sheds+expiries fraction under target


class SloSpec:
    """One declarative objective (docs/AUTOTUNE.md#slo-specs)."""

    __slots__ = ("name", "kind", "target", "lane", "budget")

    def __init__(self, name: str, kind: str, target: float,
                 lane: int | None = None, budget: float = 0.1) -> None:
        if kind not in (KIND_LANE_P99, KIND_GOODPUT, KIND_MISS_RATE):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if kind == KIND_LANE_P99 and lane is None:
            raise ValueError("lane_p99_us specs need a lane")
        if not 0.0 < budget <= 1.0:
            raise ValueError("budget is a fraction of windows in (0, 1]")
        self.name = name
        self.kind = kind
        self.target = target
        self.lane = lane
        self.budget = budget

    def value(self, snapshot) -> float:
        """The measured signal for one telemetry window."""
        if self.kind == KIND_LANE_P99:
            return snapshot.lane_p99_us(self.lane)
        if self.kind == KIND_GOODPUT:
            return snapshot.goodput_per_tick()
        return snapshot.deadline_miss_rate()

    def violated(self, snapshot) -> bool:
        value = self.value(snapshot)
        if self.kind == KIND_GOODPUT:
            return value < self.target
        if self.kind == KIND_LANE_P99 and snapshot.lane_latency_us.get(self.lane) is None:
            return False  # no traffic on the lane: nothing to judge
        return value > self.target


class SloEvent:
    """One typed judgement: a burn alert, a recovery, or an anomaly."""

    __slots__ = ("kind", "name", "window", "value", "target",
                 "burn_short", "burn_long", "attrs")

    def __init__(self, kind: str, name: str, window: int, value: float,
                 target: float, burn_short: float = 0.0,
                 burn_long: float = 0.0, **attrs) -> None:
        self.kind = kind
        self.name = name
        self.window = window
        self.value = value
        self.target = target
        self.burn_short = burn_short
        self.burn_long = burn_long
        self.attrs = attrs

    def render(self) -> str:
        return (
            f"w{self.window} {self.kind} {self.name}: value={self.value:.2f} "
            f"target={self.target:.2f} burn={self.burn_short:.2f}x/{self.burn_long:.2f}x"
        )


def rolling_median(values) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class AnomalyDetector:
    """Rolling median + MAD outlier detection on per-stage gap means.

    ``k`` is the MAD multiple (with the 1.4826 normal-consistency factor
    a gaussian signal alerts at ~k sigma); ``min_history`` windows must
    accumulate before a stage can alert at all, and a stage with MAD 0
    (perfectly constant history) uses ``floor`` as the scale so a single
    quantization step cannot page."""

    def __init__(self, window: int = 16, k: float = 5.0,
                 min_history: int = 6, floor: float = 1e-7) -> None:
        self.window = window
        self.k = k
        self.min_history = min_history
        self.floor = floor
        self._history: dict[str, deque] = {}
        self.anomalies = 0

    def observe(self, snapshot) -> list[SloEvent]:
        """Feed one window; returns anomaly events (possibly empty)."""
        out = []
        for stage, total in snapshot.gap_seconds.items():
            count = snapshot.stage_count(stage)
            mean = total / count if count else 0.0
            hist = self._history.setdefault(stage, deque(maxlen=self.window))
            if len(hist) >= self.min_history:
                median = rolling_median(hist)
                mad = rolling_median([abs(v - median) for v in hist])
                scale = max(mad * 1.4826, self.floor)
                if abs(mean - median) > self.k * scale:
                    self.anomalies += 1
                    out.append(SloEvent(
                        Stage.ANOMALY, stage, snapshot.window,
                        mean * 1e6, median * 1e6,
                        deviation=round((mean - median) / scale, 2),
                    ))
            hist.append(mean)
        return out


class SloTracker:
    """Evaluates specs over every telemetry window; emits burn-rate and
    anomaly events, optionally into the trace stream.

    Subscribe it to a hub (``hub.add_listener(tracker.observe)``) or
    call :meth:`observe` by hand.  ``recorder`` — a
    :class:`~repro.obs.trace.StageRecorder` — turns judgements into
    traced stages; None keeps the tracker silent but inspectable."""

    def __init__(self, specs, short_windows: int = 3, long_windows: int = 12,
                 recorder=None, anomaly: AnomalyDetector | None = None) -> None:
        if short_windows < 1 or long_windows < short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")
        self.specs = list(specs)
        self.short_windows = short_windows
        self.long_windows = long_windows
        self.recorder = recorder
        self.anomaly = anomaly
        self.events: list[SloEvent] = []
        self._violations: dict[str, deque] = {
            spec.name: deque(maxlen=long_windows) for spec in self.specs
        }
        self._burning: dict[str, bool] = {spec.name: False for spec in self.specs}
        self._last: dict[str, dict] = {}
        self.windows_seen = 0

    # -- burn accounting -------------------------------------------------

    def _burn(self, name: str, budget: float, horizon: int) -> float:
        window = self._violations[name]
        if not window:
            return 0.0
        recent = list(window)[-horizon:]
        # Divide by the horizon, not the observed history: windows that
        # have not happened yet count as non-violating, so a single
        # cold-start violation cannot saturate the long horizon and page.
        return (sum(recent) / horizon) / budget

    def burn(self) -> float:
        """Worst short-horizon burn across all specs — the single scalar
        the autotuner's rollback guard watches."""
        worst = 0.0
        for spec in self.specs:
            worst = max(worst, self._burn(spec.name, spec.budget,
                                          self.short_windows))
        return worst

    def burning(self) -> bool:
        return any(self._burning.values())

    # -- the listener ----------------------------------------------------

    def observe(self, snapshot) -> list[SloEvent]:
        """Evaluate one sealed window; returns the events it produced."""
        self.windows_seen += 1
        produced: list[SloEvent] = []
        for spec in self.specs:
            violated = spec.violated(snapshot)
            self._violations[spec.name].append(1 if violated else 0)
            burn_short = self._burn(spec.name, spec.budget, self.short_windows)
            burn_long = self._burn(spec.name, spec.budget, self.long_windows)
            value = spec.value(snapshot)
            now_burning = burn_short > 1.0 and burn_long > 1.0
            was_burning = self._burning[spec.name]
            self._last[spec.name] = {
                "name": spec.name, "kind": spec.kind, "value": value,
                "target": spec.target, "violated": violated,
                "burn_short": burn_short, "burn_long": burn_long,
                "burning": now_burning,
            }
            if now_burning and not was_burning:
                produced.append(SloEvent(
                    Stage.SLO_BURN, spec.name, snapshot.window, value,
                    spec.target, burn_short, burn_long, slo_kind=spec.kind,
                ))
            elif was_burning and not now_burning:
                produced.append(SloEvent(
                    Stage.SLO_RECOVERED, spec.name, snapshot.window, value,
                    spec.target, burn_short, burn_long, slo_kind=spec.kind,
                ))
            self._burning[spec.name] = now_burning
        if self.anomaly is not None:
            produced.extend(self.anomaly.observe(snapshot))
        self.events.extend(produced)
        if self.recorder is not None:
            for ev in produced:
                self.recorder.instant(
                    ev.kind, slo=ev.name, window=ev.window,
                    value=round(ev.value, 3), target=ev.target,
                    burn=round(ev.burn_short, 3), **ev.attrs,
                )
        return produced

    def status(self) -> list[dict]:
        """Per-spec dashboard rows, in spec order."""
        return [
            self._last.get(spec.name, {
                "name": spec.name, "kind": spec.kind, "value": 0.0,
                "target": spec.target, "violated": False,
                "burn_short": 0.0, "burn_long": 0.0, "burning": False,
            })
            for spec in self.specs
        ]

    def fingerprint_lines(self):
        """Deterministic event material (campaign-style fingerprints)."""
        for ev in self.events:
            yield (
                f"slo:{ev.window}:{ev.kind}:{ev.name}:"
                f"{ev.value:.3f}:{ev.burn_short:.3f}"
            )
