"""Request-scoped tracing: contexts, stage events, bounded collectors.

The aggregate metrics of :mod:`repro.metrics` answer *how much*; this
module answers *where one request's latency went* as it crossed
client → batcher → RDMA → DPU front end → arena deserializer → host
engine → response (docs/OBSERVABILITY.md).

Design constraints, in order:

1. **Free when disabled.**  Every instrumented component holds
   ``self.trace = None`` until :func:`attach` hands it a
   :class:`StageRecorder`; every hook is a single ``is not None`` test.
   No context objects, no ring buffers, no clock reads on the disabled
   path (verified by ``tests/obs/test_overhead_guard.py``).
2. **No new wire bytes (default mode).**  The trace id is *derived* from
   the protocol's own determinism: §IV-D ships no request IDs because
   both sides replay the same allocation sequence, and for exactly the
   same reason both sides can count messages in wire order and agree on
   a per-stream serial.  The client stamps ``(stream, n)`` on the n-th
   message it transmits; the server stamps ``(stream, n)`` on the n-th
   message it receives; the reliable connection makes them the same
   request.
3. **Replays covered by one opt-in word.**  A connection reset can lose
   transmitted-but-undelivered messages, skewing the derived serials for
   everything replayed afterwards.  ``explicit_context=True`` spends one
   flag bit (``Flags.TRACE_CTX``) and an 8-byte word ahead of the
   payload to carry the id explicitly; the word is stripped before the
   handler sees the payload.

Events are cheap, append-only records in per-component ring buffers
(``deque(maxlen=...)``); stitching, sampling and export happen offline
in :mod:`repro.obs.timeline` / :mod:`repro.obs.perfetto`.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = [
    "Stage",
    "TraceContext",
    "StageEvent",
    "StageRecorder",
    "TraceCollector",
    "attach_endpoint",
    "attach_channel",
    "export_events",
    "import_events",
    "import_fault_events",
]


class Stage:
    """Canonical stage names (docs/OBSERVABILITY.md#stage-taxonomy).

    Lifecycle stages appear once per request, in this order, each under
    the component that performed it; event stages (RETRY and below) are
    exceptional and drive the tail sampler's keep decisions.
    """

    # -- request lifecycle ------------------------------------------------
    INGRESS = "ingress"                  # xRPC frame accepted (edge)
    DESERIALIZE = "deserialize"          # wire bytes -> arena object (DPU)
    ENQUEUE = "enqueue"                  # request entered the endpoint
    SEAL = "block_seal"                  # its block was sealed
    TRANSMIT = "transmit"                # block posted (WRITE_WITH_IMM)
    DELIVER = "deliver"                  # block arrived at the peer
    DISPATCH = "dispatch"                # server ran the handler (timed)
    CALLBACK = "callback"                # business logic inside it (timed)
    RESPONSE_EMIT = "response_emit"      # response written into a block
    RESPONSE_DELIVER = "response_deliver"  # response reached the client
    RESPOND = "respond"                  # xRPC response frame sent (edge)
    # -- exceptional events ----------------------------------------------
    RETRY = "retry"
    TIMEOUT = "timeout"
    FAILOVER = "failover"
    RESET = "reset"
    ABORT = "abort"
    RECOVERY = "recovery_reset"
    CRASH = "engine_crash"
    REVIVE = "engine_revive"
    # -- overload control (docs/OVERLOAD.md) ------------------------------
    SHED = "shed"                        # admission control rejected
    DEADLINE_EXPIRED = "deadline_expired"  # dropped expired-on-arrival
    DEGRADE = "degrade"                  # degradation ladder stepped up
    RECOVER = "recover"                  # degradation ladder stepped down
    BREAKER_FALLBACK = "breaker_fallback"  # breaker denied the offload path
    # -- the closed observability loop (docs/AUTOTUNE.md) -----------------
    SLO_BURN = "slo_burn"                # an SLO's error budget is burning
    SLO_RECOVERED = "slo_recovered"      # burn dropped back under 1x
    ANOMALY = "stage_anomaly"            # stage gap outside median±k·MAD
    TUNE = "tune"                        # one autotuner decision

    #: stages whose presence marks a request as error-afflicted for the
    #: tail sampler (docs/OBSERVABILITY.md#sampling)
    EXCEPTIONAL = frozenset(
        {RETRY, TIMEOUT, FAILOVER, RESET, ABORT, RECOVERY, CRASH,
         SHED, DEADLINE_EXPIRED}
    )


class TraceContext:
    """One request's identity as it crosses components.

    The trace id (:attr:`tid`) is *late-bound*: events hold a reference
    to the context, so stages recorded before the id is known (enqueue,
    seal — §IV-D allocates nothing until transmit) pick it up when the
    transmit hook binds it.  Until then the context correlates its own
    events by object identity.
    """

    __slots__ = ("tid", "attrs")

    def __init__(self, tid=None, **attrs) -> None:
        self.tid = tid
        self.attrs = attrs

    def mark(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(tid={self.tid!r}, attrs={self.attrs!r})"


class StageEvent:
    """One recorded stage crossing.  ``ts``/``dur`` are seconds relative
    to the collector's epoch; ``ctx`` is None for component-global events
    (resets, supervisor verdicts, fault injections)."""

    __slots__ = ("ctx", "stage", "component", "ts", "dur", "attrs")

    def __init__(self, ctx, stage, component, ts, dur, attrs) -> None:
        self.ctx = ctx
        self.stage = stage
        self.component = component
        self.ts = ts
        self.dur = dur
        self.attrs = attrs

    @property
    def tid(self):
        """The (possibly late-bound) trace id at read time."""
        return self.ctx.tid if self.ctx is not None else None

    def render(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in (self.attrs or {}).items())
        dur = f" {self.dur * 1e6:.1f}µs" if self.dur else ""
        return f"+{self.ts * 1e6:10.1f}µs {self.component:<14} {self.stage:<16}{dur} {attrs}".rstrip()


class StageRecorder:
    """The per-component handle instrumentation hooks hold.

    One recorder per component name; all recorders share the collector's
    clock and epoch but append into their own ring, so a chatty
    component cannot evict another component's history.
    """

    __slots__ = ("collector", "component", "_ring", "_clock", "_epoch")

    def __init__(self, collector: "TraceCollector", component: str, ring) -> None:
        self.collector = collector
        self.component = component
        self._ring = ring
        self._clock = collector.clock
        self._epoch = collector.epoch

    def now(self) -> float:
        """Seconds since the collector's epoch (hooks that time a span
        call this twice and pass explicit ``ts``/``dur``)."""
        return self._clock() - self._epoch

    def context(self, **attrs) -> TraceContext:
        """New request context (edge components create one per request)."""
        return TraceContext(**attrs)

    def event(self, ctx, stage: str, ts: float | None = None,
              dur: float = 0.0, **attrs) -> None:
        """Record one stage crossing for ``ctx`` (None = global)."""
        if ts is None:
            ts = self._clock() - self._epoch
        ev = StageEvent(ctx, stage, self.component, ts, dur, attrs)
        self._ring.append(ev)
        sink = self.collector.sink
        if sink is not None:
            sink.offer(ev)

    def instant(self, stage: str, **attrs) -> None:
        """Component-global event with no request context."""
        self.event(None, stage, **attrs)


class TraceCollector:
    """Owns the per-component rings and the shared clock.

    ``ring`` bounds each component's history (old events drop silently —
    tracing must never grow without bound under load); ``clock`` is
    injectable for deterministic tests and simulated time.
    """

    def __init__(self, ring: int = 8192, clock=None) -> None:
        self.ring = ring
        self.clock = clock or time.perf_counter
        self.epoch = self.clock()
        #: generation counter for the epoch: bumped on every :meth:`clear`
        #: so consumers retaining state across rebases (the streaming
        #: :class:`~repro.obs.timeline.TailSampler`) can evict entries
        #: recorded against a dead epoch.
        self.epoch_id = 0
        #: optional streaming consumer (``offer(event)`` — the telemetry
        #: aggregator); None keeps the record path a plain ring append.
        self.sink = None
        self._rings: dict[str, deque] = {}
        self._recorders: dict[str, StageRecorder] = {}
        self._context_words = iter(range(1, 1 << 62))

    def attach_sink(self, sink):
        """Stream every recorded event into ``sink.offer(event)`` as it
        happens (the incremental path of :mod:`repro.obs.telemetry` —
        no ring rescans).  Returns the sink; pass None to detach."""
        self.sink = sink
        return sink

    def recorder(self, component: str) -> StageRecorder:
        """The (memoized) recorder for one component name."""
        rec = self._recorders.get(component)
        if rec is None:
            ring = self._rings.setdefault(component, deque(maxlen=self.ring))
            rec = StageRecorder(self, component, ring)
            self._recorders[component] = rec
        return rec

    def new_context(self, **attrs) -> TraceContext:
        return TraceContext(**attrs)

    def next_context_word(self) -> int:
        """Collector-unique id for the explicit on-wire context word."""
        return next(self._context_words)

    def components(self) -> list[str]:
        return sorted(self._rings)

    def events(self) -> list[StageEvent]:
        """All recorded events across components, in timestamp order."""
        out = [ev for ring in self._rings.values() for ev in ring]
        out.sort(key=lambda ev: ev.ts)
        return out

    def clear(self) -> None:
        for ring in self._rings.values():
            ring.clear()
        self.epoch = self.clock()
        self.epoch_id += 1
        for rec in self._recorders.values():
            rec._epoch = self.epoch


# ---------------------------------------------------------------------------
# Attachment helpers
# ---------------------------------------------------------------------------


def attach_endpoint(collector: TraceCollector, endpoint, component: str,
                    stream: str, explicit_context: bool = False) -> StageRecorder:
    """Enable request tracing on one endpoint.  ``stream`` names the
    derived-serial space and must match the peer endpoint's, or the two
    halves of each request never stitch.  Attach *before* traffic flows:
    the derived serials count messages from attachment on, and both
    sides must start counting at the same message."""
    rec = collector.recorder(component)
    endpoint.trace = rec
    endpoint._trace_stream = stream
    endpoint._trace_explicit = bool(explicit_context)
    return rec


def attach_channel(collector: TraceCollector, channel,
                   stream: str = "chan",
                   client_component: str = "dpu.rpc",
                   server_component: str = "host.rpc",
                   explicit_context: bool = False,
                   fabric_component: str | None = "fabric") -> None:
    """Wire a whole :class:`~repro.core.channel.Channel` for tracing:
    both endpoints on one shared stream, plus (optionally) the fabric's
    WRITE_WITH_IMM delivery events.  One-sided channels (the
    multiprocess deployments) attach whatever sides are local; the other
    process attaches its own half with the *same* ``stream`` name and the
    two collectors merge afterwards via :func:`export_events` /
    :func:`import_events`."""
    if channel.client is not None:
        attach_endpoint(collector, channel.client, client_component, stream,
                        explicit_context=explicit_context)
    if channel.server is not None:
        attach_endpoint(collector, channel.server, server_component, stream)
    if fabric_component is not None:
        channel.fabric.trace = collector.recorder(fabric_component)


# ---------------------------------------------------------------------------
# Cross-process merge
# ---------------------------------------------------------------------------


def export_events(collector: TraceCollector) -> dict:
    """Snapshot a collector as a picklable structure for crossing a
    process boundary: resolved trace ids, shared contexts expressed by
    index, timestamps still relative to *this* collector's epoch (the
    absolute epoch rides along so the importer can re-base).

    ``clock`` must be the default ``time.perf_counter`` for cross-process
    merging to be meaningful: on Linux it reads the system-wide
    ``CLOCK_MONOTONIC``, so two processes' epochs are directly
    comparable."""
    ctx_index: dict[int, int] = {}
    contexts: list[tuple] = []
    events = []
    for ring in collector._rings.values():
        for ev in ring:
            if ev.ctx is None:
                key = None
            else:
                key = ctx_index.get(id(ev.ctx))
                if key is None:
                    key = ctx_index[id(ev.ctx)] = len(contexts)
                    contexts.append((ev.ctx.tid, dict(ev.ctx.attrs)))
            events.append((key, ev.stage, ev.component, ev.ts, ev.dur, ev.attrs))
    return {"epoch": collector.epoch, "contexts": contexts, "events": events}


def import_events(collector: TraceCollector, snapshot: dict,
                  component_prefix: str = "") -> int:
    """Merge a peer process's :func:`export_events` snapshot into this
    collector, re-basing timestamps onto this collector's epoch via the
    shared monotonic clock.  Context identity is preserved within the
    snapshot (late-bound tids, identity-correlated unbound contexts), so
    stitching sees the same shape it would have in-process.  Returns the
    number of events imported."""
    offset = snapshot["epoch"] - collector.epoch
    contexts = [TraceContext(tid=tid, **attrs) for tid, attrs in snapshot["contexts"]]
    n = 0
    # The snapshot groups events by ring (component); a streaming sink
    # needs them in causal (timestamp) order or its gap attribution sees
    # components out of sequence.  Ring membership is unaffected.
    records = sorted(snapshot["events"], key=lambda rec: rec[3])
    sink = collector.sink
    for key, stage, component, ts, dur, attrs in records:
        comp = component_prefix + component
        ring = collector._rings.setdefault(comp, deque(maxlen=collector.ring))
        ctx = contexts[key] if key is not None else None
        ev = StageEvent(ctx, stage, comp, ts + offset, dur, attrs)
        ring.append(ev)
        if sink is not None:
            sink.offer(ev)
        n += 1
    return n


def import_fault_events(collector: TraceCollector, events,
                        component: str = "faults") -> int:
    """Replay a recorded fault log (``FaultInjector.events`` — the list
    behind a campaign fingerprint, docs/FAULTS.md) into the collector as
    instant events, using the event index as the timestamp so the
    injection *order* is preserved even though the original wall-clock
    is gone.  Returns the number imported."""
    rec = collector.recorder(component)
    n = 0
    for ev in events:
        rec.event(None, ev.kind, ts=float(ev.index) * 1e-6,
                  category=ev.category, count=ev.count,
                  target=ev.target, detail=ev.detail)
        n += 1
    return n
