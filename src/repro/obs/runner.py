"""Traced workload runner behind ``repro trace`` / ``repro top`` /
``repro metrics``.

Builds a real deployment — the full offloaded stack (xRPC client →
DPU front end → arena deserializer → RPC-over-RDMA → host engine) or
the bare core channel — with every layer's trace hook attached to one
:class:`~repro.obs.trace.TraceCollector`, pushes a mixed workload
through it, and returns the stitched timelines plus the per-stage
latency histograms.  The CLI renders; this module runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics import MetricsRegistry

from .perfetto import to_trace_events
from .timeline import StageLatencyExporter, TailSampler, stitch
from .trace import TraceCollector, attach_channel

__all__ = ["TraceRunResult", "run_traced_workload", "DEPLOYMENTS"]

#: ``procs`` is the 3-OS-process shm deployment (client = this process,
#: DPU and host children); it implies ``transport="shm"``.
DEPLOYMENTS = ("offloaded", "core", "procs")

_SERVICE_PROTO_SUFFIX = """
service Bench {
  rpc PingSmall (Small) returns (Empty);
  rpc SumInts (IntArray) returns (IntArray);
  rpc Upper (CharArray) returns (CharArray);
}
"""


@dataclass
class TraceRunResult:
    """Everything one traced run produced."""

    deployment: str
    requests: int
    errors: int
    collector: TraceCollector
    registry: MetricsRegistry
    latency: StageLatencyExporter
    timelines: list = field(default_factory=list)
    global_events: list = field(default_factory=list)
    sampled: list = field(default_factory=list)

    def trace_events(self) -> dict:
        """The Perfetto document for the *sampled* timelines."""
        return to_trace_events(self.sampled, self.global_events)

    def slowest(self):
        return max(self.timelines, key=lambda tl: tl.total, default=None)


def _bench_fixture():
    """The shared workload schema + servicer every deployment serves."""
    from repro.proto import compile_schema
    from repro.workloads import WORKLOAD_PROTO

    schema = compile_schema(WORKLOAD_PROTO + _SERVICE_PROTO_SUFFIX)
    Empty = schema["bench.Empty"]
    IntArray = schema["bench.IntArray"]
    CharArray = schema["bench.CharArray"]

    class BenchServicer:
        def PingSmall(self, request, context):
            return Empty()

        def SumInts(self, request, context):
            values = list(request.values)
            values.append(sum(values) % (1 << 32))
            return IntArray(values=values)

        def Upper(self, request, context):
            return CharArray(data=request.data.upper())

    return schema, schema.service("bench.Bench"), BenchServicer()


def _bench_calls(schema, service, channel):
    from repro.workloads import WorkloadFactory
    from repro.xrpc import make_stub_class

    stub = make_stub_class(service, schema.factory)(channel)
    factory = WorkloadFactory(schema=schema)
    return (
        lambda: stub.PingSmall(factory.small()),
        lambda: stub.SumInts(factory.int_array(128)),
        lambda: stub.Upper(factory.char_array(256)),
    )


def _build_offloaded(collector: TraceCollector, explicit_context: bool,
                     transport: str = "inproc"):
    from repro.core import create_channel
    from repro.offload.engine import DpuEngine, HostEngine
    from repro.xrpc import (
        Network,
        OffloadedXrpcServer,
        XrpcChannel,
        register_offloaded_servicer,
    )

    schema, service, servicer = _bench_fixture()
    rdma = create_channel(transport=transport)
    host = HostEngine(rdma, schema)
    register_offloaded_servicer(host, service, servicer)
    dpu = DpuEngine(rdma)
    host.send_bootstrap()
    dpu.receive_bootstrap()
    net = Network()
    front = OffloadedXrpcServer(net, "dpu:50051", dpu, service)

    # Attach every layer AFTER bootstrap (control traffic is not request
    # scoped) and BEFORE the first request, so derived serials align.
    attach_channel(collector, rdma, stream="rdma",
                   client_component="dpu.rpc", server_component="host.rpc",
                   explicit_context=explicit_context)
    dpu.trace = collector.recorder("dpu.engine")
    host.trace = collector.recorder("host.engine")
    front.trace = collector.recorder("dpu.frontend")

    channel = XrpcChannel(net, "dpu:50051", "trace-client")
    channel.trace = collector.recorder("xrpc.client")
    channel.drive = lambda: (front.progress(), host.progress())
    calls = _bench_calls(schema, service, channel)

    def issue(i: int) -> bool:
        calls[i % len(calls)]()
        return True

    endpoints = {"client": rdma.client, "server": rdma.server}
    # Overload-control sources for the merged scrape (`repro metrics`):
    # absent subsystems (no admission controller armed, no breaker) are
    # simply None/empty — OverloadExporter handles every shape.
    overload = {
        "stages": [front, rdma.server],
        "admissions": [front.admission] if front.admission is not None else [],
        "breaker": front.breaker,
        "budget": channel.retry_budget,
    }
    return issue, endpoints, rdma.close, overload


def _build_procs(collector: TraceCollector, explicit_context: bool,
                 transport: str = "shm"):
    """The 3-process deployment: every request really crosses two OS
    process boundaries (client -> DPU via socketpair, DPU -> host via
    shared-memory RDMA).  Child trace rings merge into ``collector`` at
    teardown, re-based onto the parent's clock."""
    from repro.runtime.procs import ProcSupervisor

    if transport != "shm":
        raise ValueError("the procs deployment only runs on the shm transport")
    schema, service, servicer = _bench_fixture()
    sup = ProcSupervisor(schema, service, servicer, name="traceprocs", trace=True)
    sup.collector = collector
    sup.start()
    channel = sup.xrpc_channel()
    calls = _bench_calls(schema, service, channel)

    def issue(i: int) -> bool:
        calls[i % len(calls)]()
        return True

    def finalize() -> None:
        sup.collect_traces()
        sup.stop()

    # The DPU/host overload sources live in the child processes; only
    # the client-side retry budget is scrapeable from here.
    overload = {"budget": channel.retry_budget}
    return issue, {}, finalize, overload


def _build_core(collector: TraceCollector, explicit_context: bool,
                transport: str = "inproc"):
    from repro.core import Flags, Response, create_channel

    channel = create_channel(transport=transport)
    attach_channel(collector, channel, stream="core",
                   client_component="client.rpc", server_component="server.rpc",
                   explicit_context=explicit_context)
    channel.server.register(
        1, lambda req: Response.from_bytes(req.payload_bytes().upper())
    )
    channel.server.register(
        2, lambda req: Response.from_bytes(b"boom", flags=Flags.ERROR)
    )

    def issue(i: int) -> bool:
        done: list = []
        method = 2 if i % 16 == 15 else 1  # a sprinkle of error responses
        channel.client.enqueue_bytes(
            method, b"payload-%04d" % i, lambda view, flags: done.append(flags)
        )
        for _ in range(10_000):
            channel.progress()
            if done:
                break
        return bool(done) and not (done[0] & Flags.ERROR)

    endpoints = {"client": channel.client, "server": channel.server}
    overload = {"stages": [channel.server]}
    return issue, endpoints, channel.close, overload


_BUILDERS = {
    "offloaded": _build_offloaded,
    "core": _build_core,
    "procs": _build_procs,
}


def run_traced_workload(
    deployment: str = "offloaded",
    requests: int = 60,
    explicit_context: bool = False,
    keep_slowest: int = 10,
    ring: int = 1 << 15,
    registry: MetricsRegistry | None = None,
    collector: TraceCollector | None = None,
    transport: str | None = None,
) -> TraceRunResult:
    """Run ``requests`` RPCs through a fully traced deployment and
    stitch the result.  Endpoint statistics are exported into the same
    registry (``repro metrics`` dumps the combined scrape).

    ``transport`` selects the fabric backend (docs/TRANSPORT.md) for the
    in-process deployments; the ``procs`` deployment always runs shm."""
    if deployment not in DEPLOYMENTS:
        raise ValueError(f"unknown deployment {deployment!r}; pick from {DEPLOYMENTS}")
    if transport is None:
        transport = "shm" if deployment == "procs" else "inproc"
    collector = collector or TraceCollector(ring=ring)
    registry = registry or MetricsRegistry()
    issue, endpoints, finalize, overload = _BUILDERS[deployment](
        collector, explicit_context, transport
    )

    errors = 0
    try:
        for i in range(requests):
            try:
                ok = issue(i)
            except Exception:
                ok = False
            if not ok:
                errors += 1
    finally:
        if finalize is not None:
            finalize()

    from repro.metrics import EndpointExporter, OverloadExporter

    for label, endpoint in endpoints.items():
        EndpointExporter(registry, endpoint, f"trace_{deployment}_{label}").update()

    # The overload subsystem joins the same scrape: per-stage deadline
    # drops, admission outcomes, breaker state, retry budget — whatever
    # sources this deployment actually has (docs/OVERLOAD.md).  Before
    # this bind, a plain `repro metrics` run silently omitted them.
    OverloadExporter(registry, "overload", **overload).update()

    # Codec-layer counters: plan-cache traffic plus the generated-codec
    # tier (compiles, cache hits, source bytes, compile ns) land in the
    # same scrape, so ``repro metrics`` shows what the codec layer did.
    from repro.proto import ENCODE_PLAN_METRICS, PLAN_METRICS

    PLAN_METRICS.bind_registry(registry).export()
    ENCODE_PLAN_METRICS.bind_registry(registry).export()

    timelines, global_events = stitch(collector)
    latency = StageLatencyExporter(registry)
    latency.observe(timelines)
    sampled = TailSampler(keep_slowest=keep_slowest).sample(timelines)
    return TraceRunResult(
        deployment=deployment,
        requests=requests,
        errors=errors,
        collector=collector,
        registry=registry,
        latency=latency,
        timelines=timelines,
        global_events=global_events,
        sampled=sampled,
    )
