"""Stitching stage events into end-to-end request timelines.

A :class:`~repro.obs.trace.TraceCollector` holds flat per-component
rings; this module groups the request-scoped events by trace id —
contexts created independently on the client and server sides of a
channel stitch because the derived (or explicit) trace id binds them to
the same value — orders each group by timestamp, and derives per-stage
latency accounting from the gaps between consecutive stages.

:class:`TailSampler` implements the keep policy: tail-based sampling
decides *after* the request finished, so it can keep exactly the
requests worth looking at — the slowest N plus everything errored,
retried, timed out, or failed over.

:class:`StageLatencyExporter` feeds the same per-stage gaps into
labelled :class:`~repro.metrics.registry.Histogram` metrics, giving the
scrape-side p50/p95/p99 view of the identical data.
"""

from __future__ import annotations

from .trace import Stage, StageEvent, TraceCollector

__all__ = [
    "RequestTimeline",
    "stitch",
    "stage_latencies",
    "TailSampler",
    "StageLatencyExporter",
    "TRACE_LATENCY_BUCKETS",
]


class RequestTimeline:
    """One request's events across every component, in time order."""

    __slots__ = ("tid", "events")

    def __init__(self, tid, events: list[StageEvent]) -> None:
        self.tid = tid
        self.events = sorted(events, key=lambda ev: ev.ts)

    # -- shape -----------------------------------------------------------

    @property
    def start(self) -> float:
        return self.events[0].ts

    @property
    def end(self) -> float:
        last = self.events[-1]
        return last.ts + last.dur

    @property
    def total(self) -> float:
        """End-to-end seconds from the first to the last recorded stage."""
        return self.end - self.start

    def stages(self) -> list[str]:
        return [ev.stage for ev in self.events]

    def components(self) -> set[str]:
        return {ev.component for ev in self.events}

    def attrs(self) -> dict:
        """Union of every context's attributes (client + server halves)."""
        merged: dict = {}
        seen = set()
        for ev in self.events:
            if ev.ctx is not None and id(ev.ctx) not in seen:
                seen.add(id(ev.ctx))
                merged.update(ev.ctx.attrs)
        return merged

    # -- verdicts (tail-sampler inputs) ----------------------------------

    @property
    def errored(self) -> bool:
        from repro.core.wire import Flags

        return any(int(ev.attrs.get("flags", 0)) & Flags.ERROR for ev in self.events)

    @property
    def retried(self) -> bool:
        return any(ev.stage == Stage.RETRY for ev in self.events) or bool(
            self.attrs().get("retry")
        )

    @property
    def failed_over(self) -> bool:
        return any(ev.stage == Stage.FAILOVER for ev in self.events) or bool(
            self.attrs().get("degraded")
        )

    @property
    def exceptional(self) -> bool:
        return any(ev.stage in Stage.EXCEPTIONAL for ev in self.events)

    # -- latency accounting ----------------------------------------------

    def stage_gaps(self) -> list[tuple[str, str, float]]:
        """Per-stage latency attribution: ``(component, stage, seconds)``
        where a stage's latency is the time since the previous stage
        ended (timed stages — dispatch, deserialize — contribute their
        own duration instead, since the gap *is* the duration)."""
        out = []
        prev_end = None
        for ev in self.events:
            if ev.dur:
                out.append((ev.component, ev.stage, ev.dur))
            elif prev_end is not None:
                out.append((ev.component, ev.stage, max(0.0, ev.ts - prev_end)))
            prev_end = ev.ts + ev.dur
        return out

    def render(self) -> str:
        head = (
            f"trace {self.tid}: {len(self.events)} events, "
            f"{self.total * 1e6:.1f}µs end-to-end, "
            f"components={','.join(sorted(self.components()))}"
        )
        body = "\n".join("  " + ev.render() for ev in self.events)
        return f"{head}\n{body}"


def stitch(source) -> tuple[list[RequestTimeline], list[StageEvent]]:
    """Group a collector's (or event list's) request-scoped events into
    timelines; returns ``(timelines, global_events)``.

    Contexts are grouped by their (late-bound) trace id: the client's
    and server's independently created contexts for one request carry
    the same id, so their event groups merge into one timeline.  A
    context whose id never bound (the request never transmitted) keeps
    its events under a synthetic ``("unbound", k)`` id.  Timelines come
    back sorted by start time; ctx-less events (resets, supervisor and
    fault verdicts) are returned separately.
    """
    events = source.events() if isinstance(source, TraceCollector) else list(source)
    global_events: list[StageEvent] = []
    by_ctx: dict[int, list[StageEvent]] = {}
    ctxs: dict[int, object] = {}
    for ev in events:
        if ev.ctx is None:
            global_events.append(ev)
        else:
            by_ctx.setdefault(id(ev.ctx), []).append(ev)
            ctxs[id(ev.ctx)] = ev.ctx
    by_tid: dict[object, list[StageEvent]] = {}
    unbound = 0
    for key, evs in by_ctx.items():
        tid = ctxs[key].tid
        if tid is None:
            tid = ("unbound", unbound)
            unbound += 1
        by_tid.setdefault(tid, []).extend(evs)
    timelines = [RequestTimeline(tid, evs) for tid, evs in by_tid.items()]
    timelines.sort(key=lambda tl: tl.start)
    return timelines, global_events


def stage_latencies(timelines) -> dict[str, list[float]]:
    """Aggregate the per-stage gaps of many timelines by stage name."""
    out: dict[str, list[float]] = {}
    for tl in timelines:
        for _, stage, seconds in tl.stage_gaps():
            out.setdefault(stage, []).append(seconds)
    return out


class TailSampler:
    """Tail-based sampling: decide *after* completion which request
    timelines to keep.  Always keeps the slowest ``keep_slowest`` plus
    every errored / retried / failed-over / otherwise-exceptional
    request (docs/OBSERVABILITY.md#sampling).

    :meth:`sample` is the one-shot form.  Long-running collectors use
    the streaming form instead — :meth:`retain` folds each batch's
    keepers into a retained set, and :meth:`rebase` must be called
    whenever the collector's epoch generation changes (``clear()``
    bumps :attr:`~repro.obs.trace.TraceCollector.epoch_id`; a procs
    supervisor's DPU respawn is a generation too).  Entries recorded
    against an epoch older than ``keep_epochs`` generations are
    evicted: timestamps from a dead epoch are not comparable to the
    current one, so a pre-crash outlier would otherwise sit at the top
    of the slowest-N list forever."""

    def __init__(self, keep_slowest: int = 10, keep_errored: bool = True,
                 keep_retried: bool = True, keep_failed_over: bool = True,
                 keep_exceptional: bool = True, keep_epochs: int = 1) -> None:
        self.keep_slowest = keep_slowest
        self.keep_errored = keep_errored
        self.keep_retried = keep_retried
        self.keep_failed_over = keep_failed_over
        self.keep_exceptional = keep_exceptional
        self.keep_epochs = keep_epochs
        self._epoch = 0
        self._retained: list[tuple[int, RequestTimeline]] = []
        self.evicted = 0

    def sample(self, timelines) -> list[RequestTimeline]:
        """The kept subset, in start-time order, with reasons recorded
        in each timeline's first context (``sampled_because``)."""
        keep: dict[int, tuple[RequestTimeline, str]] = {}

        def mark(tl: RequestTimeline, why: str) -> None:
            keep.setdefault(id(tl), (tl, why))

        # Exceptional reasons mark first: a request that is both errored
        # and slowest-N keeps its exceptional label, so the streaming
        # form never makes it compete for (and lose) a slow seat.
        for tl in timelines:
            if self.keep_errored and tl.errored:
                mark(tl, "errored")
            elif self.keep_retried and tl.retried:
                mark(tl, "retried")
            elif self.keep_failed_over and tl.failed_over:
                mark(tl, "failed_over")
            elif self.keep_exceptional and tl.exceptional:
                mark(tl, "exceptional")
        for tl in sorted(timelines, key=lambda t: t.total, reverse=True)[
            : self.keep_slowest
        ]:
            mark(tl, "slow")
        out = []
        for tl, why in keep.values():
            for ev in tl.events:
                if ev.ctx is not None:
                    ev.ctx.attrs.setdefault("sampled_because", why)
                    break
            out.append(tl)
        out.sort(key=lambda tl: tl.start)
        return out

    # -- streaming form (long-running / procs collectors) -----------------

    @staticmethod
    def _why(tl: RequestTimeline) -> str:
        for ev in tl.events:
            if ev.ctx is not None:
                return ev.ctx.attrs.get("sampled_because", "slow")
        return "slow"

    def rebase(self, epoch: int) -> int:
        """Note the collector's current epoch generation (its
        ``epoch_id``, or a supervisor respawn counter).  Retained
        timelines more than ``keep_epochs`` generations behind are
        evicted; returns how many."""
        if epoch == self._epoch:
            return 0
        self._epoch = epoch
        horizon = epoch - self.keep_epochs
        before = len(self._retained)
        self._retained = [(e, tl) for e, tl in self._retained if e >= horizon]
        evicted = before - len(self._retained)
        self.evicted += evicted
        return evicted

    def retain(self, timelines, epoch: int | None = None) -> list[RequestTimeline]:
        """Fold one batch's keepers into the retained set (tagging them
        with the current epoch — pass ``epoch`` to rebase in the same
        call) and re-rank: exceptional keeps accumulate, slow keeps
        compete for ``keep_slowest`` seats *within the live epochs
        only*.  Returns the batch's own keepers."""
        if epoch is not None:
            self.rebase(epoch)
        kept = self.sample(timelines)
        self._retained.extend((self._epoch, tl) for tl in kept)
        slow = [(e, tl) for e, tl in self._retained if self._why(tl) == "slow"]
        if len(slow) > self.keep_slowest:
            slow.sort(key=lambda pair: pair[1].total, reverse=True)
            losers = {id(tl) for _, tl in slow[self.keep_slowest:]}
            self._retained = [
                (e, tl) for e, tl in self._retained if id(tl) not in losers
            ]
        return kept

    def retained(self) -> list[RequestTimeline]:
        """The surviving sample across every live epoch, oldest epoch
        first, start-time ordered within an epoch."""
        return [tl for _, tl in sorted(
            self._retained, key=lambda pair: (pair[0], pair[1].start)
        )]


#: Buckets tuned for in-process stage gaps: sub-µs hooks up to ms-scale
#: handler work (the default registry buckets are too coarse below 1µs).
TRACE_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 1.0, float("inf"),
)


class StageLatencyExporter:
    """Feeds per-stage gaps into a :class:`MetricsRegistry` histogram
    (label ``stage``) plus an end-to-end request histogram, making
    p50/p95/p99 per stage available through the standard text exposition
    (`repro metrics`) — the §VI scrape path, now request-aware."""

    def __init__(self, registry, prefix: str = "trace") -> None:
        self.stage_hist = registry.histogram(
            f"{prefix}_stage_latency_seconds",
            "per-stage request latency (gap since the previous stage)",
            ("stage",),
            buckets=TRACE_LATENCY_BUCKETS,
        )
        self.request_hist = registry.histogram(
            f"{prefix}_request_latency_seconds",
            "end-to-end request latency across all traced stages",
            buckets=TRACE_LATENCY_BUCKETS,
        )
        self.observed = 0

    def observe(self, timelines) -> int:
        """Account every timeline's stage gaps; returns requests seen."""
        n = 0
        for tl in timelines:
            for _, stage, seconds in tl.stage_gaps():
                self.stage_hist.labels(stage).observe(seconds)
            self.request_hist.observe(tl.total)
            n += 1
        self.observed += n
        return n

    def table(self) -> str:
        """Stage latency table: count, p50/p95/p99 in µs, per stage."""
        lines = [f"{'stage':<18} {'count':>7} {'p50 µs':>10} {'p95 µs':>10} {'p99 µs':>10}"]
        rows = []
        for key, child in sorted(self.stage_hist._children.items()):
            rows.append((key[0], child))
        for name, child in rows:
            lines.append(
                f"{name:<18} {child.count:>7} "
                f"{child.quantile(0.5) * 1e6:>10.1f} "
                f"{child.quantile(0.95) * 1e6:>10.1f} "
                f"{child.quantile(0.99) * 1e6:>10.1f}"
            )
        r = self.request_hist
        lines.append(
            f"{'(end-to-end)':<18} {r.count:>7} "
            f"{r.quantile(0.5) * 1e6:>10.1f} "
            f"{r.quantile(0.95) * 1e6:>10.1f} "
            f"{r.quantile(0.99) * 1e6:>10.1f}"
        )
        return "\n".join(lines)
