"""Request-scoped observability for the offload datapath.

Layers (docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — trace contexts, stage events, bounded
  per-component ring buffers, attachment helpers;
* :mod:`repro.obs.timeline` — stitching events into end-to-end request
  timelines, per-stage latency accounting, tail sampling, histogram
  export;
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` JSON
  export and validation;
* :mod:`repro.obs.runner` — the traced-workload driver behind the
  ``repro trace`` / ``repro top`` / ``repro metrics`` CLI subcommands;
* :mod:`repro.obs.telemetry` — the streaming aggregator: windowed
  snapshots folded from the live event stream (docs/AUTOTUNE.md);
* :mod:`repro.obs.slo` — declarative SLO specs, multi-window burn-rate
  tracking, and anomaly detection over telemetry snapshots.
"""

from .perfetto import to_trace_events, validate_trace_events, write_trace
from .slo import (
    AnomalyDetector,
    SloEvent,
    SloSpec,
    SloTracker,
)
from .telemetry import (
    TelemetryHub,
    TelemetrySnapshot,
    exact_quantile,
    render_dashboard,
)
from .timeline import (
    RequestTimeline,
    StageLatencyExporter,
    TailSampler,
    stage_latencies,
    stitch,
)
from .trace import (
    Stage,
    StageEvent,
    StageRecorder,
    TraceCollector,
    TraceContext,
    attach_channel,
    attach_endpoint,
    export_events,
    import_events,
    import_fault_events,
)

__all__ = [
    "Stage",
    "StageEvent",
    "StageRecorder",
    "TraceCollector",
    "TraceContext",
    "attach_channel",
    "attach_endpoint",
    "export_events",
    "import_events",
    "import_fault_events",
    "RequestTimeline",
    "StageLatencyExporter",
    "TailSampler",
    "stage_latencies",
    "stitch",
    "to_trace_events",
    "validate_trace_events",
    "write_trace",
    "TelemetryHub",
    "TelemetrySnapshot",
    "exact_quantile",
    "render_dashboard",
    "AnomalyDetector",
    "SloEvent",
    "SloSpec",
    "SloTracker",
]
