"""Reference protobuf deserializer — the *non-offloaded* baseline.

This is the deserializer the host CPU runs in the paper's baseline
scenario: it parses proto3 wire bytes into the dynamic
:class:`~repro.proto.message.Message` objects.  Like protobuf it

* accepts fields in any order,
* lets later occurrences of a singular field overwrite earlier ones
  ("last one wins"),
* merges repeated occurrences of an embedded message field,
* accepts packed and unpacked encodings interchangeably for repeated
  scalars, and
* skips unknown fields by wire type.

The offloaded equivalent, which decodes straight into C++ object layout in
a shared-address-space arena, lives in
:mod:`repro.offload.arena_deserializer`; the two must agree on every valid
input (tested property-based).
"""

from __future__ import annotations

from .descriptor import FieldDescriptor, FieldType, MessageDescriptor
from .message import Message
from .serializer import wire_type_for
from .utf8 import Utf8Error, validate_utf8
from .wire_format import (
    TruncatedMessageError,
    WireFormatError,
    WireType,
    decode_zigzag,
    read_double,
    read_fixed32,
    read_fixed64,
    read_float,
    read_tag,
    read_varint,
)

__all__ = [
    "parse",
    "parse_into",
    "skip_field",
    "DecodeError",
    "DECODE_MODES",
    "set_decode_mode",
    "get_decode_mode",
]

#: Selectable decode paths: "plan" is the compiled closure-table fast path
#: (see :mod:`repro.proto.decode_plan`), "generated" the straight-line
#: source-generated tier above it (:mod:`repro.proto.gen_codec`),
#: "interpretive" the original descriptor-walking baseline kept for
#: differential testing.
DECODE_MODES = ("plan", "generated", "interpretive")

_decode_mode = "plan"

# Lazily bound on first use (the plan/gen_codec modules import this one,
# so the imports cannot be at module level).
_get_plan = None
_get_gen_decoder = None


def set_decode_mode(mode: str) -> str:
    """Select the process-wide default decode path; returns the previous
    mode (so tests can restore it)."""
    global _decode_mode
    if mode not in DECODE_MODES:
        raise ValueError(f"unknown decode mode {mode!r}; expected one of {DECODE_MODES}")
    previous = _decode_mode
    _decode_mode = mode
    return previous


def get_decode_mode() -> str:
    return _decode_mode


class DecodeError(WireFormatError):
    """Message-level decoding failure (wraps wire-format errors with the
    message type and field context)."""


def _u32_to_i32(v: int) -> int:
    return v - (1 << 32) if v >= (1 << 31) else v


def _u64_to_i64(v: int) -> int:
    return v - (1 << 64) if v >= (1 << 63) else v


def _decode_varint_value(fd: FieldDescriptor, raw: int):
    t = fd.type
    if t is FieldType.BOOL:
        return raw != 0
    if t is FieldType.SINT32 or t is FieldType.SINT64:
        return decode_zigzag(raw)
    if t is FieldType.INT32:
        # int32 is sign-extended to 64 bits on the wire.
        return _u32_to_i32(raw & 0xFFFFFFFF)
    if t is FieldType.ENUM:
        return _u32_to_i32(raw & 0xFFFFFFFF)
    if t is FieldType.INT64:
        return _u64_to_i64(raw)
    if t is FieldType.UINT32:
        return raw & 0xFFFFFFFF
    return raw  # uint64


def _read_scalar(fd: FieldDescriptor, buf, pos: int):
    """Read one element of ``fd`` assuming its natural wire type."""
    t = fd.type
    if t.is_varint:
        raw, pos = read_varint(buf, pos)
        return _decode_varint_value(fd, raw), pos
    if t is FieldType.DOUBLE:
        return read_double(buf, pos)
    if t is FieldType.FLOAT:
        return read_float(buf, pos)
    if t is FieldType.FIXED64:
        return read_fixed64(buf, pos)
    if t is FieldType.SFIXED64:
        raw, pos = read_fixed64(buf, pos)
        return _u64_to_i64(raw), pos
    if t is FieldType.FIXED32:
        return read_fixed32(buf, pos)
    if t is FieldType.SFIXED32:
        raw, pos = read_fixed32(buf, pos)
        return _u32_to_i32(raw), pos
    raise AssertionError(f"not a packable scalar: {t}")


def skip_field(buf, pos: int, wire_type: int, end: int | None = None) -> int:
    """Skip an unknown field's payload; returns the new position.

    ``end`` bounds the skip to the enclosing (sub)message.  Without it a
    corrupt length-delimited or fixed-width unknown field could absorb
    bytes belonging to the *parent* message before the overrun is noticed.
    """
    if end is None:
        end = len(buf)
    if wire_type == WireType.VARINT:
        _, pos = read_varint(buf, pos)
        if pos > end:
            raise TruncatedMessageError("truncated varint while skipping")
        return pos
    if wire_type == WireType.FIXED64:
        if pos + 8 > end:
            raise TruncatedMessageError("truncated fixed64 while skipping")
        return pos + 8
    if wire_type == WireType.FIXED32:
        if pos + 4 > end:
            raise TruncatedMessageError("truncated fixed32 while skipping")
        return pos + 4
    if wire_type == WireType.LENGTH_DELIMITED:
        n, pos = read_varint(buf, pos)
        if pos + n > end:
            raise TruncatedMessageError("truncated length-delimited field while skipping")
        return pos + n
    raise WireFormatError(f"cannot skip wire type {wire_type}")


def _parse_range(msg: Message, buf, pos: int, end: int) -> None:
    desc: MessageDescriptor = msg.DESCRIPTOR
    while pos < end:
        tag_start = pos
        field_number, wire_type, pos = read_tag(buf, pos)
        fd = desc.field_by_number(field_number)
        if fd is None:
            pos = skip_field(buf, pos, wire_type, end)
            # proto3 (>= 3.5) semantics: unknown fields are preserved and
            # re-emitted on serialization, not dropped.
            msg._unknown += bytes(buf[tag_start:pos])
            continue
        try:
            pos = _parse_field(msg, fd, wire_type, buf, pos, end)
        except (WireFormatError, Utf8Error) as exc:
            raise DecodeError(
                f"{desc.full_name}.{fd.name}: {exc}"
            ) from exc
    if pos != end:
        raise DecodeError(f"{desc.full_name}: field payload overran submessage end")


def _parse_field(
    msg: Message, fd: FieldDescriptor, wire_type: int, buf, pos: int, end: int
) -> int:
    t = fd.type
    if t is FieldType.MESSAGE:
        if wire_type != WireType.LENGTH_DELIMITED:
            raise WireFormatError(f"message field with wire type {wire_type}")
        n, pos = read_varint(buf, pos)
        if pos + n > end:
            raise TruncatedMessageError("submessage extends past parent")
        if fd.is_repeated:
            sub = getattr(msg, fd.name).add()
        else:
            # proto3 merge semantics: repeated occurrences merge into the
            # existing submessage.
            sub = getattr(msg, fd.name)
            msg._values[fd.name] = sub
        _parse_range(sub, buf, pos, pos + n)
        return pos + n

    if t in (FieldType.STRING, FieldType.BYTES):
        if wire_type != WireType.LENGTH_DELIMITED:
            raise WireFormatError(f"{t.value} field with wire type {wire_type}")
        n, pos = read_varint(buf, pos)
        if pos + n > end:
            raise TruncatedMessageError(f"{t.value} extends past end")
        raw = bytes(buf[pos : pos + n])
        if t is FieldType.STRING:
            validate_utf8(raw)
            value = raw.decode("utf-8")
        else:
            value = raw
        if fd.is_repeated:
            getattr(msg, fd.name).append(value)
        else:
            setattr(msg, fd.name, value)
        return pos + n

    # Numeric scalar.
    if fd.is_repeated and wire_type == WireType.LENGTH_DELIMITED:
        # Packed encoding.
        n, pos = read_varint(buf, pos)
        if pos + n > end:
            raise TruncatedMessageError("packed run extends past end")
        run_end = pos + n
        target = getattr(msg, fd.name)
        while pos < run_end:
            value, pos = _read_scalar(fd, buf, pos)
            target.append(value)
        if pos != run_end:
            raise WireFormatError("packed run length mismatch")
        return pos

    if wire_type != wire_type_for(fd):
        raise WireFormatError(
            f"field {fd.name}: wire type {wire_type}, expected {wire_type_for(fd)}"
        )
    value, pos = _read_scalar(fd, buf, pos)
    if fd.is_repeated:
        getattr(msg, fd.name).append(value)
    else:
        setattr(msg, fd.name, value)
    return pos


def parse_into(msg: Message, data, mode: str | None = None) -> Message:
    """Parse wire bytes into an existing message (merging).

    ``mode`` overrides the process-wide decode mode for this call:
    ``"plan"`` dispatches to the message type's cached
    :class:`~repro.proto.decode_plan.DecodePlan`; ``"generated"`` to its
    compiled straight-line decoder
    (:mod:`repro.proto.gen_codec`); ``"interpretive"`` runs the original
    descriptor-walking loop.
    """
    m = mode or _decode_mode
    if m == "plan":
        global _get_plan
        if _get_plan is None:
            from .decode_plan import get_plan

            _get_plan = get_plan
        plan = _get_plan(type(msg).DESCRIPTOR, msg._FACTORY)
        buf = data if isinstance(data, memoryview) else memoryview(
            data if isinstance(data, (bytes, bytearray)) else bytes(data)
        )
        plan.parse(msg, buf, 0, len(buf))
        return msg
    if m == "generated":
        global _get_gen_decoder
        if _get_gen_decoder is None:
            from .gen_codec import get_gen_decoder

            _get_gen_decoder = get_gen_decoder
        codec = _get_gen_decoder(type(msg).DESCRIPTOR, msg._FACTORY)
        buf = data if isinstance(data, memoryview) else memoryview(
            data if isinstance(data, (bytes, bytearray)) else bytes(data)
        )
        codec.parse(msg, buf, 0, len(buf))
        return msg
    if m != "interpretive":
        raise ValueError(f"unknown decode mode {m!r}; expected one of {DECODE_MODES}")
    buf = bytes(data)
    _parse_range(msg, buf, 0, len(buf))
    return msg


def parse(cls: type[Message], data, mode: str | None = None) -> Message:
    """Parse wire bytes into a fresh instance of ``cls``."""
    return parse_into(cls(), data, mode)
