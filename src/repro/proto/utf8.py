"""UTF-8 validation — scalar and vectorized paths.

The paper singles out UTF-8 validation as one of the two expensive
operations in string deserialization and notes that the host wins there
because x86 SIMD instructions validate Unicode very quickly (§V), while the
DPU's ARM cores run a scalar loop.  We model both:

* :func:`validate_utf8_scalar` — a DFA-based byte-at-a-time validator, the
  shape of the loop a non-SIMD core executes;
* :func:`validate_utf8_simd` — a NumPy block-vectorized validator standing
  in for the SSE/AVX path;
* :func:`validate_utf8` — the default, which takes the ASCII fast path and
  falls back to the vectorized validator.

Both reject the same inputs CPython's strict ``utf-8`` codec rejects
(surrogates, overlongs, > U+10FFFF, truncation), which is also protobuf's
validity contract for ``string`` fields.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Utf8Error",
    "validate_utf8",
    "validate_utf8_scalar",
    "validate_utf8_simd",
]


class Utf8Error(ValueError):
    """Raised when a byte string is not valid UTF-8."""


# DFA after Björn Höhrmann's "Flexible and Economical UTF-8 Decoder":
# byte -> character class, (state, class) -> next state.  State 0 is
# ACCEPT, state 1 is REJECT.
_BYTE_CLASS = np.zeros(256, dtype=np.uint8)
_BYTE_CLASS[0x00:0x80] = 0  # ASCII
_BYTE_CLASS[0x80:0x90] = 1  # continuation low
_BYTE_CLASS[0x90:0xA0] = 9  # continuation mid-low
_BYTE_CLASS[0xA0:0xC0] = 7  # continuation high
_BYTE_CLASS[0xC0:0xC2] = 8  # overlong 2-byte lead
_BYTE_CLASS[0xC2:0xE0] = 2  # 2-byte lead
_BYTE_CLASS[0xE0:0xE1] = 10  # 3-byte lead, constrained continuation
_BYTE_CLASS[0xE1:0xED] = 3  # 3-byte lead
_BYTE_CLASS[0xED:0xEE] = 4  # 3-byte lead excluding surrogates
_BYTE_CLASS[0xEE:0xF0] = 3
_BYTE_CLASS[0xF0:0xF1] = 11  # 4-byte lead, constrained continuation
_BYTE_CLASS[0xF1:0xF4] = 6  # 4-byte lead
_BYTE_CLASS[0xF4:0xF5] = 5  # 4-byte lead, upper bound U+10FFFF
_BYTE_CLASS[0xF5:0x100] = 8  # invalid leads

# transition[state][class] -> next state (states 0..8, scaled by 12 in the
# original formulation; we keep a 2-D table for clarity).
_TRANSITION = np.array(
    [
        # cls: 0   1   2   3   4   5   6   7   8   9  10  11
        [0, 1, 2, 3, 5, 8, 7, 1, 1, 1, 4, 6],  # state 0: accept
        [1] * 12,  # state 1: reject
        [1, 0, 1, 1, 1, 1, 1, 0, 1, 0, 1, 1],  # state 2: one cont needed
        [1, 2, 1, 1, 1, 1, 1, 2, 1, 2, 1, 1],  # state 3: two conts needed
        [1, 1, 1, 1, 1, 1, 1, 2, 1, 1, 1, 1],  # state 4: E0 (cont must be A0..BF)
        [1, 2, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1],  # state 5: ED (cont must be 80..9F)
        [1, 1, 1, 1, 1, 1, 1, 3, 1, 3, 1, 1],  # state 6: F0 (cont must be 90..BF)
        [1, 3, 1, 1, 1, 1, 1, 3, 1, 3, 1, 1],  # state 7: F1..F3
        [1, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1],  # state 8: F4 (cont must be 80..8F)
    ],
    dtype=np.uint8,
)


def validate_utf8_scalar(data) -> None:
    """Validate byte-at-a-time with the DFA; raises :class:`Utf8Error`."""
    state = 0
    byte_class = _BYTE_CLASS
    transition = _TRANSITION
    for i, b in enumerate(bytes(data)):
        state = transition[state][byte_class[b]]
        if state == 1:
            raise Utf8Error(f"invalid UTF-8 at byte {i}")
    if state != 0:
        raise Utf8Error("truncated UTF-8 sequence at end of string")


def validate_utf8_simd(data) -> None:
    """Block-vectorized validation (the x86-SIMD stand-in).

    Classifies all bytes at once with a table gather, then runs the DFA
    only over the (typically sparse) non-ASCII spans.  Pure-ASCII inputs
    validate with two vector operations and no per-byte Python work.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    if raw.size == 0:
        return
    classes = _BYTE_CLASS[raw]
    nonascii = np.flatnonzero(classes)
    if nonascii.size == 0:
        return
    # Multi-byte sequences are at most 4 bytes, so it suffices to run the
    # DFA over maximal runs of non-ASCII bytes (a lead byte and its
    # continuations are all non-ASCII).
    transition = _TRANSITION
    state = 0
    prev = -2
    for idx in nonascii:
        if idx != prev + 1 and state != 0:
            raise Utf8Error(f"truncated UTF-8 sequence before byte {idx}")
        state = transition[state][classes[idx]]
        if state == 1:
            raise Utf8Error(f"invalid UTF-8 at byte {idx}")
        prev = idx
    if state != 0:
        raise Utf8Error("truncated UTF-8 sequence at end of string")


def validate_utf8(data) -> None:
    """Default validator: vectorized with an ASCII fast path."""
    validate_utf8_simd(data)
