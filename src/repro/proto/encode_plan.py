"""Compiled encode plans — the per-message specialized serialization fast
path, and the entry point of the zero-copy send pipeline.

The interpretive serializer in :mod:`repro.proto.serializer` walks
``ListFields()`` per message and re-dispatches on
:class:`~repro.proto.descriptor.FieldType` per field occurrence; nested
messages are serialized into intermediate ``bytes`` objects so their
length prefix can be written, and the finished payload is copied again by
whatever framing layer sends it.  An :class:`EncodePlan` is the encode-side
twin of :class:`~repro.proto.decode_plan.DecodePlan`: compiled once per
message descriptor, it holds a flat tuple of per-field closures with the
tag varint bytes, proto3 default, ``struct.Struct`` packer, element
converter and child plan all pre-bound — no descriptor access anywhere on
the hot path.

Serialization is the protoc scheme: one *size* pass that computes every
submessage length exactly once (results parked in a per-call memo, the
Python analog of C++'s cached-size fields), then one *emit* pass that
writes wire bytes left-to-right into a caller-provided buffer.  Packed
repeated numerics bulk-encode through NumPy — fixed-width runs are a
single ``asarray().tobytes()``, varint runs go through the vectorized
:func:`~repro.proto.wire_format.encode_packed_varints_bulk`.

Because the emit pass targets any writable buffer, plans can serialize
**directly into the registered send region**: :meth:`EncodePlan.serialize_into`
and the :meth:`EncodePlan.measure` → :meth:`SizedMessage.emit_into` pair let
the datapath reserve exactly ``size`` bytes in a block (or an xrpc frame)
and have the plan write the wire bytes there, eliminating the intermediate
full-payload ``bytes`` materialization the interpretive path pays.  Each
direct emission bumps ``ENCODE_PLAN_METRICS.copies_avoided``.

Plans are cached on the owning :class:`~repro.proto.message.MessageFactory`
(``factory._encode_plans``); the interpretive path remains selectable
(``ProtocolConfig.encode_mode = "interpretive"`` or
:func:`repro.proto.serializer.set_encode_mode`) as the differential-testing
baseline — both paths must produce byte-identical output on every message.
See ``docs/DECODER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .descriptor import FieldDescriptor, FieldType, MessageDescriptor
from .message import Message, MessageFactory
from .serializer import EncodeError, _scalar_to_varint, _tag_cache
from .wire_format import (
    _DOUBLE,
    _FIXED32,
    _FIXED64,
    _FLOAT,
    _SFIXED32,
    _SFIXED64,
    append_varint,
    encode_packed_varints_bulk,
    encode_zigzag,
    varint_size,
    write_varint,
)

__all__ = [
    "EncodePlan",
    "SizedMessage",
    "EncodePlanMetrics",
    "ENCODE_PLAN_METRICS",
    "get_plan",
    "compile_plan",
]

_U64_MASK = (1 << 64) - 1

#: Runs shorter than this encode through the scalar loop — below it the
#: NumPy array round-trip costs more than it saves.  Both paths are
#: byte-identical; the threshold is purely a performance crossover.
_BULK_MIN = 16


# ---------------------------------------------------------------------------
# Plan-cache observability
# ---------------------------------------------------------------------------


@dataclass
class EncodePlanMetrics:
    """Counters for encode-plan cache traffic, encode volume and the
    zero-copy send path.

    ``copies_avoided`` counts direct emissions into caller-provided
    buffers (``serialize_into`` / ``SizedMessage.emit_into``) — each one
    is a full-payload ``bytes`` materialization the interpretive pipeline
    would have performed.  Plain-int counters on the hot path; export into
    a :class:`~repro.metrics.registry.MetricsRegistry` on demand.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    plans_compiled: int = 0
    bytes_emitted: int = 0
    copies_avoided: int = 0
    #: generated-codec tier (repro.proto.gen_codec): compiles, cache hits,
    #: total emitted source bytes, and nanoseconds spent generating +
    #: compiling (outermost calls only).
    gen_compiles: int = 0
    gen_cache_hits: int = 0
    gen_source_bytes: int = 0
    gen_compile_ns: int = 0

    def __post_init__(self) -> None:
        #: encodes per message type, aggregated across factories
        self.encodes: dict[str, int] = {}
        self._gauges = None

    def count_encode(self, full_name: str) -> None:
        self.encodes[full_name] = self.encodes.get(full_name, 0) + 1

    def reset(self) -> None:
        self.cache_hits = self.cache_misses = self.plans_compiled = 0
        self.bytes_emitted = self.copies_avoided = 0
        self.gen_compiles = self.gen_cache_hits = 0
        self.gen_source_bytes = self.gen_compile_ns = 0
        self.encodes.clear()

    # -- registry export -----------------------------------------------------

    def bind_registry(self, registry, prefix: str = "encode_plan"):
        """Create the exported metric families in ``registry``."""
        self._gauges = {
            "hits": registry.gauge(f"{prefix}_cache_hits", "encode-plan cache hits"),
            "misses": registry.gauge(f"{prefix}_cache_misses", "encode-plan cache misses"),
            "compiled": registry.gauge(f"{prefix}_plans_compiled", "encode plans compiled"),
            "bytes": registry.gauge(f"{prefix}_bytes_emitted", "wire bytes emitted by plans"),
            "copies": registry.gauge(
                f"{prefix}_copies_avoided",
                "full-payload copies avoided by direct buffer emission",
            ),
            "encodes": registry.gauge(
                f"{prefix}_encodes", "plan-based message encodes", ("message",)
            ),
            "gen_compiles": registry.gauge(
                f"{prefix}_gen_compiles", "generated encoders compiled"
            ),
            "gen_hits": registry.gauge(
                f"{prefix}_gen_cache_hits", "generated-encoder cache hits"
            ),
            "gen_source_bytes": registry.gauge(
                f"{prefix}_gen_source_bytes", "generated encoder source bytes"
            ),
            "gen_compile_ns": registry.gauge(
                f"{prefix}_gen_compile_ns", "ns spent generating + compiling encoders"
            ),
        }
        return self

    def export(self) -> None:
        """Push current counter values into the bound registry."""
        if self._gauges is None:
            return
        self._gauges["hits"].set(self.cache_hits)
        self._gauges["misses"].set(self.cache_misses)
        self._gauges["compiled"].set(self.plans_compiled)
        self._gauges["bytes"].set(self.bytes_emitted)
        self._gauges["copies"].set(self.copies_avoided)
        self._gauges["gen_compiles"].set(self.gen_compiles)
        self._gauges["gen_hits"].set(self.gen_cache_hits)
        self._gauges["gen_source_bytes"].set(self.gen_source_bytes)
        self._gauges["gen_compile_ns"].set(self.gen_compile_ns)
        for name, count in self.encodes.items():
            self._gauges["encodes"].labels(name).set(count)


#: Process-wide metrics instance (both the plan cache and every plan feed it).
ENCODE_PLAN_METRICS = EncodePlanMetrics()


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


def _always(value) -> bool:
    # Singular submessages serialize whenever set, even when empty.
    return True


class SizedMessage:
    """A message whose serialized size is already known.

    Produced by :meth:`EncodePlan.measure`: the size pass has run and its
    per-submessage length memo is retained, so the caller can first
    reserve ``size`` bytes at the destination (a block payload slot, a
    frame buffer) and then :meth:`emit_into` it — the emit pass never
    re-measures anything.  The message must not be mutated in between.
    """

    __slots__ = ("plan", "msg", "size", "_memo")

    def __init__(self, plan: "EncodePlan", msg: Message, size: int, memo: dict) -> None:
        self.plan = plan
        self.msg = msg
        self.size = size
        self._memo = memo

    def emit_into(self, buf, offset: int = 0) -> int:
        """Write the wire bytes into ``buf`` at ``offset``; returns the end
        position.  Counts as one avoided full-payload copy."""
        if offset + self.size > len(buf):
            raise EncodeError(
                f"buffer too small: need {self.size} bytes at offset {offset}, "
                f"have {len(buf) - offset}"
            )
        end = self.plan._emit(self.msg, buf, offset, self._memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.plan.full_name)
        metrics.bytes_emitted += self.size
        metrics.copies_avoided += 1
        return end

    def to_bytes(self) -> bytes:
        """Materialize the wire bytes (no copy avoided)."""
        out = bytearray(self.size)
        self.plan._emit(self.msg, out, 0, self._memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.plan.full_name)
        metrics.bytes_emitted += self.size
        return bytes(out)


class EncodePlan:
    """Compiled serializer for one message descriptor."""

    __slots__ = ("descriptor", "full_name", "_fields")

    def __init__(self, descriptor: MessageDescriptor) -> None:
        self.descriptor = descriptor
        self.full_name = descriptor.full_name
        #: (field_name, present(value), sizer(value, memo), emitter(value,
        #: buf, pos, memo)) in field-number order — ListFields semantics
        #: compiled down to closure calls.
        self._fields: tuple = ()

    # -- the two passes ------------------------------------------------------

    def _size(self, msg: Message, memo: dict) -> int:
        values = msg._values
        total = len(msg._unknown)
        for name, present, sizer, _emitter in self._fields:
            v = values.get(name)
            if v is not None and present(v):
                total += sizer(v, memo)
        return total

    def _emit(self, msg: Message, buf, pos: int, memo: dict) -> int:
        values = msg._values
        for name, present, _sizer, emitter in self._fields:
            v = values.get(name)
            if v is not None and present(v):
                pos = emitter(v, buf, pos, memo)
        unknown = msg._unknown
        if unknown:
            end = pos + len(unknown)
            buf[pos:end] = unknown
            pos = end
        return pos

    # -- public API ----------------------------------------------------------

    def serialized_size(self, msg: Message) -> int:
        """Exact serialized size (one size pass, memo discarded)."""
        return self._size(msg, {})

    def serialize(self, msg: Message) -> bytes:
        """Serialize ``msg`` to a fresh ``bytes`` object."""
        memo: dict = {}
        size = self._size(msg, memo)
        out = bytearray(size)
        self._emit(msg, out, 0, memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.full_name)
        metrics.bytes_emitted += size
        return bytes(out)

    def serialize_into(self, msg: Message, buf, offset: int = 0) -> int:
        """Serialize ``msg`` directly into ``buf`` at ``offset``.

        ``buf`` is any writable buffer (``bytearray`` or a ``memoryview``
        of one — e.g. a slice of the registered send region).  Returns the
        end position; raises :class:`~repro.proto.serializer.EncodeError`
        if the message does not fit.
        """
        memo: dict = {}
        size = self._size(msg, memo)
        if offset + size > len(buf):
            raise EncodeError(
                f"buffer too small: need {size} bytes at offset {offset}, "
                f"have {len(buf) - offset}"
            )
        end = self._emit(msg, buf, offset, memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.full_name)
        metrics.bytes_emitted += size
        metrics.copies_avoided += 1
        return end

    def measure(self, msg: Message) -> SizedMessage:
        """Run the size pass now, emit later (see :class:`SizedMessage`)."""
        memo: dict = {}
        size = self._size(msg, memo)
        return SizedMessage(self, msg, size, memo)


# ---------------------------------------------------------------------------
# Field compilation
# ---------------------------------------------------------------------------

_FIXED_PACKERS = {
    FieldType.DOUBLE: _DOUBLE,
    FieldType.FLOAT: _FLOAT,
    FieldType.FIXED32: _FIXED32,
    FieldType.FIXED64: _FIXED64,
    FieldType.SFIXED32: _SFIXED32,
    FieldType.SFIXED64: _SFIXED64,
}

_FIXED_DTYPES = {
    FieldType.DOUBLE: "<f8",
    FieldType.FLOAT: "<f4",
    FieldType.FIXED32: "<u4",
    FieldType.FIXED64: "<u8",
    FieldType.SFIXED32: "<i4",
    FieldType.SFIXED64: "<i8",
}


def _varint_converter(t: FieldType):
    """Python-value → unsigned-64-bit-raw converter for varint kinds."""
    if t is FieldType.BOOL:
        return lambda v: 1 if v else 0
    if t is FieldType.SINT32:
        return lambda v: encode_zigzag(v, 32)
    if t is FieldType.SINT64:
        return lambda v: encode_zigzag(v, 64)
    return lambda v: v & _U64_MASK


def _bulk_raw(t: FieldType, vals) -> np.ndarray:
    """Vectorized counterpart of :func:`_varint_converter`: a list of
    field values → ``uint64`` raw varint values, bit-for-bit equal to the
    scalar conversion."""
    if t in (FieldType.UINT32, FieldType.UINT64):
        return np.asarray(vals, dtype=np.uint64)
    if t is FieldType.BOOL:
        return np.asarray(vals, dtype=np.uint64)
    a = np.asarray(vals, dtype=np.int64)
    if t is FieldType.SINT32:
        # zigzag32: results fit in 32 bits, so int64 arithmetic is exact.
        return ((a << 1) ^ (a >> 31)).astype(np.uint64)
    if t is FieldType.SINT64:
        # zigzag64 in uint64 arithmetic: (2v mod 2^64) ^ (all-ones if v<0),
        # identical to ((v<<1) ^ (v>>63)) & MASK64 without int64 overflow.
        u = a.view(np.uint64)
        return (u << np.uint64(1)) ^ np.where(
            a < 0, np.uint64(_U64_MASK), np.uint64(0)
        )
    # int32/int64/enum: negatives are 64-bit two's complement.
    return a.view(np.uint64)


def _packed_run_encoder(fd: FieldDescriptor):
    """Returns ``encode(values) -> bytes`` producing the packed payload of
    one repeated numeric field, byte-identical to the interpretive
    per-element loop."""
    t = fd.type
    if t in _FIXED_DTYPES:
        dtype = _FIXED_DTYPES[t]
        packer = _FIXED_PACKERS[t]
        if t is FieldType.FLOAT:

            def encode(vals) -> bytes:
                arr64 = np.asarray(vals, dtype=np.float64)
                with np.errstate(over="ignore"):
                    arr = arr64.astype(np.float32)
                # struct.pack('<f') raises where NumPy would round to inf;
                # keep the two encode paths behaviorally identical.
                if np.any(np.isinf(arr) & np.isfinite(arr64)):
                    raise OverflowError("float too large to pack with f format")
                return arr.tobytes()

            return encode

        def encode(vals) -> bytes:
            if len(vals) < _BULK_MIN:
                out = bytearray()
                for v in vals:
                    out += packer.pack(v)
                return bytes(out)
            return np.asarray(vals, dtype=dtype).tobytes()

        return encode

    to_raw = _varint_converter(t)
    if t is FieldType.BOOL:
        # Booleans are single-byte varints; the uint8 buffer IS the run.
        return lambda vals: bytes(vals)

    def encode(vals) -> bytes:
        if len(vals) < _BULK_MIN:
            out = bytearray()
            for v in vals:
                append_varint(out, to_raw(v))
            return bytes(out)
        return encode_packed_varints_bulk(_bulk_raw(t, vals))

    return encode


def _compile_field(fd: FieldDescriptor, factory: MessageFactory, cache: dict):
    """Compile one field into ``(present, sizer, emitter)`` closures."""
    tag, packed_tag, tag_len = _tag_cache(fd)
    t = fd.type

    if fd.is_repeated:
        present = len
        if t is FieldType.MESSAGE:
            child = _child_plan(fd.message_type, factory, cache)

            def sizer(v, memo):
                total = 0
                child_size = child._size
                for e in v:
                    n = child_size(e, memo)
                    memo[id(e)] = n
                    total += tag_len + varint_size(n) + n
                return total

            def emitter(v, buf, pos, memo):
                child_emit = child._emit
                for e in v:
                    n = memo[id(e)]
                    buf[pos : pos + tag_len] = tag
                    pos = write_varint(buf, pos + tag_len, n)
                    pos = child_emit(e, buf, pos, memo)
                return pos

        elif t is FieldType.STRING:

            def sizer(v, memo):
                datas = [e.encode("utf-8") for e in v]
                memo[id(v)] = datas
                total = 0
                for d in datas:
                    n = len(d)
                    total += tag_len + varint_size(n) + n
                return total

            def emitter(v, buf, pos, memo):
                for d in memo[id(v)]:
                    buf[pos : pos + tag_len] = tag
                    pos = write_varint(buf, pos + tag_len, len(d))
                    end = pos + len(d)
                    buf[pos:end] = d
                    pos = end
                return pos

        elif t is FieldType.BYTES:

            def sizer(v, memo):
                total = 0
                for d in v:
                    n = len(d)
                    total += tag_len + varint_size(n) + n
                return total

            def emitter(v, buf, pos, memo):
                for d in v:
                    buf[pos : pos + tag_len] = tag
                    pos = write_varint(buf, pos + tag_len, len(d))
                    end = pos + len(d)
                    buf[pos:end] = d
                    pos = end
                return pos

        elif fd.is_packed and not getattr(fd, "force_unpacked", False):
            encode_run = _packed_run_encoder(fd)

            def sizer(v, memo):
                run = encode_run(v)
                memo[id(v)] = run
                n = len(run)
                return tag_len + varint_size(n) + n

            def emitter(v, buf, pos, memo):
                run = memo[id(v)]
                buf[pos : pos + tag_len] = packed_tag
                pos = write_varint(buf, pos + tag_len, len(run))
                end = pos + len(run)
                buf[pos:end] = run
                pos = end
                return pos

        elif t.is_varint:
            to_raw = _varint_converter(t)

            def sizer(v, memo):
                total = len(v) * tag_len
                for e in v:
                    total += varint_size(to_raw(e))
                return total

            def emitter(v, buf, pos, memo):
                for e in v:
                    buf[pos : pos + tag_len] = tag
                    pos = write_varint(buf, pos + tag_len, to_raw(e))
                return pos

        else:  # unpacked fixed-width (``[packed = false]``)
            packer = _FIXED_PACKERS[t]
            width = packer.size

            def sizer(v, memo):
                return len(v) * (tag_len + width)

            def emitter(v, buf, pos, memo):
                pack_into = packer.pack_into
                for e in v:
                    buf[pos : pos + tag_len] = tag
                    pos += tag_len
                    pack_into(buf, pos, e)
                    pos += width
                return pos

        return fd.name, present, sizer, emitter

    # -- singular ------------------------------------------------------------

    if t is FieldType.MESSAGE:
        child = _child_plan(fd.message_type, factory, cache)
        present = _always

        def sizer(v, memo):
            n = child._size(v, memo)
            memo[id(v)] = n
            return tag_len + varint_size(n) + n

        def emitter(v, buf, pos, memo):
            n = memo[id(v)]
            buf[pos : pos + tag_len] = tag
            pos = write_varint(buf, pos + tag_len, n)
            return child._emit(v, buf, pos, memo)

        return fd.name, present, sizer, emitter

    default = fd.default_value()

    def present(v, _default=default):
        return v != _default

    if t is FieldType.BOOL:
        # A present singular bool is necessarily True: one payload byte.
        one = tag_len + 1

        def sizer(v, memo):
            return one

        def emitter(v, buf, pos, memo):
            buf[pos : pos + tag_len] = tag
            buf[pos + tag_len] = 1
            return pos + one

    elif t.is_varint:
        to_raw = _varint_converter(t)

        def sizer(v, memo):
            return tag_len + varint_size(to_raw(v))

        def emitter(v, buf, pos, memo):
            buf[pos : pos + tag_len] = tag
            return write_varint(buf, pos + tag_len, to_raw(v))

    elif t is FieldType.STRING:

        def sizer(v, memo):
            data = v.encode("utf-8")
            memo[id(v)] = data
            n = len(data)
            return tag_len + varint_size(n) + n

        def emitter(v, buf, pos, memo):
            data = memo[id(v)]
            buf[pos : pos + tag_len] = tag
            pos = write_varint(buf, pos + tag_len, len(data))
            end = pos + len(data)
            buf[pos:end] = data
            return end

    elif t is FieldType.BYTES:

        def sizer(v, memo):
            n = len(v)
            return tag_len + varint_size(n) + n

        def emitter(v, buf, pos, memo):
            buf[pos : pos + tag_len] = tag
            pos = write_varint(buf, pos + tag_len, len(v))
            end = pos + len(v)
            buf[pos:end] = v
            return end

    else:  # fixed-width scalar
        packer = _FIXED_PACKERS[t]
        width = packer.size
        total = tag_len + width

        def sizer(v, memo):
            return total

        def emitter(v, buf, pos, memo):
            buf[pos : pos + tag_len] = tag
            packer.pack_into(buf, pos + tag_len, v)
            return pos + total

    return fd.name, present, sizer, emitter


def _child_plan(
    descriptor: MessageDescriptor, factory: MessageFactory, cache: dict
) -> EncodePlan:
    plan = cache.get(descriptor.full_name)
    if plan is None:
        plan = compile_plan(descriptor, factory, cache)
    return plan


# ---------------------------------------------------------------------------
# Compilation & cache
# ---------------------------------------------------------------------------


def compile_plan(
    descriptor: MessageDescriptor,
    factory: MessageFactory,
    cache: dict[str, EncodePlan],
) -> EncodePlan:
    """Compile a plan for ``descriptor``; the plan is inserted into
    ``cache`` *before* its fields compile so recursive message types
    resolve to the in-flight plan instead of recursing forever."""
    plan = EncodePlan(descriptor)
    cache[descriptor.full_name] = plan
    ENCODE_PLAN_METRICS.plans_compiled += 1
    plan._fields = tuple(
        _compile_field(fd, factory, cache) for fd in descriptor.fields_sorted()
    )
    return plan


def get_plan(descriptor: MessageDescriptor, factory: MessageFactory) -> EncodePlan:
    """The cached plan for ``descriptor`` under ``factory`` (compiling on
    first use).  Plans live on the factory — one compilation serves every
    instance of the message class."""
    cache = factory.__dict__.get("_encode_plans")
    if cache is None:
        cache = {}
        factory._encode_plans = cache
    plan = cache.get(descriptor.full_name)
    if plan is None:
        ENCODE_PLAN_METRICS.cache_misses += 1
        plan = compile_plan(descriptor, factory, cache)
    else:
        ENCODE_PLAN_METRICS.cache_hits += 1
    return plan
