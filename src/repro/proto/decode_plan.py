"""Compiled decode plans — the per-message specialized deserialization
fast path.

The reference deserializer in :mod:`repro.proto.deserializer` is fully
interpretive: every field decode pays a ``field_by_number`` dict lookup, a
wire-type comparison chain over :class:`~repro.proto.descriptor.FieldType`
and the generic attribute protocol of :class:`~repro.proto.message.Message`.
That is exactly the per-field overhead the paper's custom deserializer
eliminates by resolving the schema *once* (§V-B: the ADT is built per
class, not per instance).

A :class:`DecodePlan` is the host-side analog of that one-time
resolution: compiled once per message descriptor, it holds a flat
``tag -> handler`` closure table where every handler has its field name,
converter, ``struct.Struct`` unpacker, oneof sibling set and child plan
pre-bound.  Parsing a message is then

* one varint read for the tag (with a single-byte fast path),
* one dict probe, and
* one closure call that stores straight into ``Message._values``,

with no descriptor access anywhere on the hot path.  Packed fixed-width
runs bulk-decode through NumPy ``frombuffer``; packed varint runs go
through the vectorized
:func:`~repro.proto.wire_format.decode_packed_varints`.  The input buffer
is sliced through :class:`memoryview`, so length-delimited payloads are
copied exactly once (into their final ``str``/``bytes`` value), never
into intermediate ``bytes`` temporaries.

Plans are cached on the owning :class:`~repro.proto.message.MessageFactory`
(one plan per message type per factory, shared by every instance); cache
traffic and per-plan decode counts are observable through
:data:`PLAN_METRICS`, which exports into a
:class:`~repro.metrics.registry.MetricsRegistry`.

The interpretive path remains available (``ProtocolConfig.decode_mode =
"interpretive"`` or :func:`repro.proto.deserializer.set_decode_mode`) as
the differential-testing baseline; both paths must agree field-for-field,
including preserved unknown bytes, on every valid input.

The offloaded twin — the same compilation strategy applied to ADT entries
instead of descriptors — lives in :mod:`repro.offload.arena_plan`.  See
``docs/DECODER.md``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .descriptor import FieldDescriptor, FieldType, MessageDescriptor
from .deserializer import DecodeError, skip_field
from .message import MessageFactory, _RepeatedField
from .serializer import wire_type_for
from .utf8 import Utf8Error
from .wire_format import (
    TruncatedMessageError,
    WireFormatError,
    WireType,
    decode_packed_varints,
    make_tag,
    read_varint,
)

__all__ = [
    "DecodePlan",
    "PlanMetrics",
    "PLAN_METRICS",
    "get_plan",
    "compile_plan",
]

_U32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Plan-cache observability
# ---------------------------------------------------------------------------


@dataclass
class PlanMetrics:
    """Counters for plan-cache traffic and per-plan decode volume.

    Follows the :mod:`repro.runtime.metrics` idiom: cheap plain-int
    counters on the hot path, pushed into a
    :class:`~repro.metrics.registry.MetricsRegistry` on demand via
    :meth:`bind_registry` + :meth:`export`.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    plans_compiled: int = 0
    #: generated-codec tier (repro.proto.gen_codec): compiles, cache hits,
    #: total emitted source bytes, and nanoseconds spent generating +
    #: compiling (outermost calls only — nested child compiles are
    #: included in their parent's span).
    gen_compiles: int = 0
    gen_cache_hits: int = 0
    gen_source_bytes: int = 0
    gen_compile_ns: int = 0

    def __post_init__(self) -> None:
        #: decodes per message type, aggregated across factories
        self.decodes: dict[str, int] = {}
        self._gauges = None

    def count_decode(self, full_name: str) -> None:
        self.decodes[full_name] = self.decodes.get(full_name, 0) + 1

    def reset(self) -> None:
        self.cache_hits = self.cache_misses = self.plans_compiled = 0
        self.gen_compiles = self.gen_cache_hits = 0
        self.gen_source_bytes = self.gen_compile_ns = 0
        self.decodes.clear()

    # -- registry export -----------------------------------------------------

    def bind_registry(self, registry, prefix: str = "decode_plan"):
        """Create the exported metric families in ``registry``."""
        self._gauges = {
            "hits": registry.gauge(f"{prefix}_cache_hits", "decode-plan cache hits"),
            "misses": registry.gauge(f"{prefix}_cache_misses", "decode-plan cache misses"),
            "compiled": registry.gauge(f"{prefix}_plans_compiled", "decode plans compiled"),
            "decodes": registry.gauge(
                f"{prefix}_decodes", "plan-based message decodes", ("message",)
            ),
            "gen_compiles": registry.gauge(
                f"{prefix}_gen_compiles", "generated decoders compiled"
            ),
            "gen_hits": registry.gauge(
                f"{prefix}_gen_cache_hits", "generated-decoder cache hits"
            ),
            "gen_source_bytes": registry.gauge(
                f"{prefix}_gen_source_bytes", "generated decoder source bytes"
            ),
            "gen_compile_ns": registry.gauge(
                f"{prefix}_gen_compile_ns", "ns spent generating + compiling decoders"
            ),
        }
        return self

    def export(self) -> None:
        """Push current counter values into the bound registry."""
        if self._gauges is None:
            return
        self._gauges["hits"].set(self.cache_hits)
        self._gauges["misses"].set(self.cache_misses)
        self._gauges["compiled"].set(self.plans_compiled)
        self._gauges["gen_compiles"].set(self.gen_compiles)
        self._gauges["gen_hits"].set(self.gen_cache_hits)
        self._gauges["gen_source_bytes"].set(self.gen_source_bytes)
        self._gauges["gen_compile_ns"].set(self.gen_compile_ns)
        for name, count in self.decodes.items():
            self._gauges["decodes"].labels(name).set(count)


#: Process-wide plan metrics (reference and offload plan caches both feed it).
PLAN_METRICS = PlanMetrics()


# ---------------------------------------------------------------------------
# Compiled constants shared by handler factories
# ---------------------------------------------------------------------------

# struct unpackers for singular fixed-width fields: (unpack_from, width).
_FIXED_STRUCTS = {
    FieldType.DOUBLE: (struct.Struct("<d").unpack_from, 8),
    FieldType.FLOAT: (struct.Struct("<f").unpack_from, 4),
    FieldType.FIXED64: (struct.Struct("<Q").unpack_from, 8),
    FieldType.SFIXED64: (struct.Struct("<q").unpack_from, 8),
    FieldType.FIXED32: (struct.Struct("<I").unpack_from, 4),
    FieldType.SFIXED32: (struct.Struct("<i").unpack_from, 4),
}

# NumPy dtypes for bulk-decoding packed fixed-width runs.
_FIXED_DTYPES = {
    FieldType.DOUBLE: np.dtype("<f8"),
    FieldType.FLOAT: np.dtype("<f4"),
    FieldType.FIXED64: np.dtype("<u8"),
    FieldType.SFIXED64: np.dtype("<i8"),
    FieldType.FIXED32: np.dtype("<u4"),
    FieldType.SFIXED32: np.dtype("<i4"),
}


def _u32_to_i32(v: int) -> int:
    return v - (1 << 32) if v >= (1 << 31) else v


def _u64_to_i64(v: int) -> int:
    return v - (1 << 64) if v >= (1 << 63) else v


def _zigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


# raw varint -> python value, per field type (same results as the
# interpretive `_decode_varint_value`).
_VARINT_CONVERT = {
    FieldType.BOOL: lambda raw: raw != 0,
    FieldType.SINT32: _zigzag,
    FieldType.SINT64: _zigzag,
    FieldType.INT32: lambda raw: _u32_to_i32(raw & _U32),
    FieldType.ENUM: lambda raw: _u32_to_i32(raw & _U32),
    FieldType.INT64: _u64_to_i64,
    FieldType.UINT32: lambda raw: raw & _U32,
    FieldType.UINT64: lambda raw: raw,
}


def _bulk_varint_convert(kind: FieldType, raw: np.ndarray) -> list:
    """Vectorized per-type conversion of a decoded packed varint run.
    Element-for-element identical to `_VARINT_CONVERT[kind]`."""
    if kind is FieldType.BOOL:
        return (raw != 0).tolist()
    if kind in (FieldType.SINT32, FieldType.SINT64):
        dec = (raw >> np.uint64(1)).astype(np.int64) ^ -(raw & np.uint64(1)).astype(np.int64)
        return dec.tolist()
    if kind in (FieldType.INT32, FieldType.ENUM):
        return raw.astype(np.uint32).astype(np.int32).tolist()
    if kind is FieldType.INT64:
        return raw.astype(np.int64).tolist()
    if kind is FieldType.UINT32:
        return raw.astype(np.uint32).tolist()
    return raw.tolist()  # uint64


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class DecodePlan:
    """One message type's precompiled decode table.

    ``handlers`` maps the full tag value (field number << 3 | wire type) to
    a closure ``handler(msg, buf, pos, end) -> new_pos``.  Repeated numeric
    fields register under two tags (packed and unpacked); everything the
    handler needs — converters, unpackers, sibling oneof names, the child
    plan for message fields — is bound at compile time.
    """

    __slots__ = (
        "full_name",
        "descriptor",
        "handlers",
        "tag_names",
        "decode_count",
        "__weakref__",
    )

    def __init__(self, descriptor: MessageDescriptor) -> None:
        self.full_name = descriptor.full_name
        self.descriptor = descriptor
        self.handlers: dict[int, object] = {}
        self.tag_names: dict[int, str] = {}
        #: messages decoded through this plan (includes nested parses)
        self.decode_count = 0

    # -- hot loop ------------------------------------------------------------

    def parse_range(self, msg, buf, pos: int, end: int) -> None:
        """Parse ``buf[pos:end]`` into ``msg`` (merging, like the
        interpretive ``_parse_range``)."""
        self.decode_count += 1
        handlers = self.handlers
        while pos < end:
            tag_start = pos
            b = buf[pos]
            if b < 0x80:
                tag = b
                pos += 1
            else:
                tag, pos = read_varint(buf, pos)
            handler = handlers.get(tag)
            if handler is not None:
                try:
                    pos = handler(msg, buf, pos, end)
                except (WireFormatError, Utf8Error) as exc:
                    raise DecodeError(
                        f"{self.full_name}.{self.tag_names[tag]}: {exc}"
                    ) from exc
            else:
                pos = self._parse_unknown(msg, buf, tag, tag_start, pos, end)
        if pos != end:
            raise DecodeError(f"{self.full_name}: field payload overran submessage end")

    def parse(self, msg, buf, pos: int, end: int) -> None:
        """Top-level entry: one wire message (counts toward metrics)."""
        PLAN_METRICS.count_decode(self.full_name)
        self.parse_range(msg, buf, pos, end)

    # -- cold paths ----------------------------------------------------------

    def _parse_unknown(self, msg, buf, tag: int, tag_start: int, pos: int, end: int) -> int:
        """Tag missed the table: either a genuinely unknown field (skip and
        preserve) or a known field carried with the wrong wire type (an
        error, matching the interpretive path)."""
        number = tag >> 3
        wire_type = tag & 0x7
        if number == 0:
            raise WireFormatError("field number 0 is invalid")
        if not WireType.is_valid(wire_type):
            raise WireFormatError(f"unsupported wire type {wire_type}")
        fd = self.descriptor.field_by_number(number)
        if fd is not None:
            raise DecodeError(
                f"{self.full_name}.{fd.name}: field {fd.name}: wire type "
                f"{wire_type}, expected {wire_type_for(fd)}"
            )
        pos = skip_field(buf, pos, wire_type, end)
        msg._unknown += bytes(buf[tag_start:pos])
        return pos


# ---------------------------------------------------------------------------
# Handler factories
# ---------------------------------------------------------------------------
#
# Each factory closes over everything resolved at compile time.  Handlers
# write to ``msg._values`` directly; the values they produce are exactly
# those the interpretive path would have produced *after* validation, so
# bypassing the attribute protocol changes nothing observable.


def _make_list_getter(fd: FieldDescriptor, factory: MessageFactory):
    name = fd.name

    def get_list(msg):
        values = msg._values
        lst = values.get(name)
        if lst is None:
            lst = _RepeatedField(fd, factory)
            values[name] = lst
        return lst

    return get_list


def _varint_singular(name: str, convert, siblings: tuple[str, ...]):
    def handler(msg, buf, pos, end):
        if pos >= end:
            raise TruncatedMessageError("varint extends past end of buffer")
        b = buf[pos]
        if b < 0x80:
            raw = b
            pos += 1
        else:
            raw, pos = read_varint(buf, pos)
        values = msg._values
        values[name] = convert(raw)
        for s in siblings:
            values.pop(s, None)
        return pos

    return handler


def _varint_repeated(get_list, convert):
    def handler(msg, buf, pos, end):
        if pos >= end:
            raise TruncatedMessageError("varint extends past end of buffer")
        b = buf[pos]
        if b < 0x80:
            raw = b
            pos += 1
        else:
            raw, pos = read_varint(buf, pos)
        list.append(get_list(msg), convert(raw))
        return pos

    return handler


def _varint_packed(get_list, kind: FieldType):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        run_end = pos + n
        if run_end > end:
            raise TruncatedMessageError("packed run extends past end")
        raw = decode_packed_varints(buf[pos:run_end])
        list.extend(get_list(msg), _bulk_varint_convert(kind, raw))
        return run_end

    return handler


def _fixed_singular(name: str, unpack_from, width: int, siblings: tuple[str, ...]):
    def handler(msg, buf, pos, end):
        npos = pos + width
        if npos > end:
            raise TruncatedMessageError("fixed-width value extends past end")
        values = msg._values
        values[name] = unpack_from(buf, pos)[0]
        for s in siblings:
            values.pop(s, None)
        return npos

    return handler


def _fixed_repeated(get_list, unpack_from, width: int):
    def handler(msg, buf, pos, end):
        npos = pos + width
        if npos > end:
            raise TruncatedMessageError("fixed-width value extends past end")
        list.append(get_list(msg), unpack_from(buf, pos)[0])
        return npos

    return handler


def _fixed_packed(get_list, dtype: np.dtype):
    width = dtype.itemsize

    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        run_end = pos + n
        if run_end > end:
            raise TruncatedMessageError("packed run extends past end")
        if n % width:
            raise WireFormatError("packed run length mismatch")
        arr = np.frombuffer(buf[pos:run_end], dtype=dtype)
        list.extend(get_list(msg), arr.tolist())
        return run_end

    return handler


def _string_singular(name: str, siblings: tuple[str, ...]):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("string extends past end")
        try:
            # Single copy: codec reads the memoryview slice directly.  The
            # strict utf-8 codec rejects exactly what validate_utf8 rejects.
            value = str(buf[pos:npos], "utf-8")
        except UnicodeDecodeError as exc:
            raise Utf8Error(str(exc)) from None
        values = msg._values
        values[name] = value
        for s in siblings:
            values.pop(s, None)
        return npos

    return handler


def _string_repeated(get_list):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("string extends past end")
        try:
            value = str(buf[pos:npos], "utf-8")
        except UnicodeDecodeError as exc:
            raise Utf8Error(str(exc)) from None
        list.append(get_list(msg), value)
        return npos

    return handler


def _bytes_singular(name: str, siblings: tuple[str, ...]):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("bytes extends past end")
        values = msg._values
        values[name] = bytes(buf[pos:npos])
        for s in siblings:
            values.pop(s, None)
        return npos

    return handler


def _bytes_repeated(get_list):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("bytes extends past end")
        list.append(get_list(msg), bytes(buf[pos:npos]))
        return npos

    return handler


def _message_singular(name: str, cls, child_plan: DecodePlan):
    # NB: no oneof sibling clearing — the interpretive path writes message
    # members through `_values` directly, so neither path clears here.
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("submessage extends past parent")
        values = msg._values
        sub = values.get(name)
        if sub is None:
            sub = cls()
            values[name] = sub
        child_plan.parse_range(sub, buf, pos, npos)
        return npos

    return handler


def _message_repeated(get_list, cls, child_plan: DecodePlan):
    def handler(msg, buf, pos, end):
        n, pos = read_varint(buf, pos)
        npos = pos + n
        if npos > end:
            raise TruncatedMessageError("submessage extends past parent")
        sub = cls()
        child_plan.parse_range(sub, buf, pos, npos)
        list.append(get_list(msg), sub)
        return npos

    return handler


# ---------------------------------------------------------------------------
# Compilation + cache
# ---------------------------------------------------------------------------


def _siblings_of(descriptor: MessageDescriptor, fd: FieldDescriptor) -> tuple[str, ...]:
    if fd.containing_oneof is None:
        return ()
    return tuple(
        other.name
        for other in descriptor.fields
        if other.containing_oneof == fd.containing_oneof and other.name != fd.name
    )


def _compile_field(plan: DecodePlan, fd: FieldDescriptor, factory: MessageFactory) -> None:
    t = fd.type
    natural_wt = wire_type_for(fd)
    natural_tag = make_tag(fd.number, natural_wt)
    siblings = _siblings_of(plan.descriptor, fd)

    def register(tag: int, handler) -> None:
        plan.handlers[tag] = handler
        plan.tag_names[tag] = fd.name

    if t is FieldType.MESSAGE:
        cls = factory.get_class(fd.message_type)
        child_plan = get_plan(fd.message_type, factory)
        if fd.is_repeated:
            handler = _message_repeated(_make_list_getter(fd, factory), cls, child_plan)
        else:
            handler = _message_singular(fd.name, cls, child_plan)
        register(natural_tag, handler)
        return

    if t is FieldType.STRING:
        if fd.is_repeated:
            handler = _string_repeated(_make_list_getter(fd, factory))
        else:
            handler = _string_singular(fd.name, siblings)
        register(natural_tag, handler)
        return

    if t is FieldType.BYTES:
        if fd.is_repeated:
            handler = _bytes_repeated(_make_list_getter(fd, factory))
        else:
            handler = _bytes_singular(fd.name, siblings)
        register(natural_tag, handler)
        return

    # Numeric scalar (varint or fixed-width).
    if t.is_varint:
        convert = _VARINT_CONVERT[t]
        if fd.is_repeated:
            get_list = _make_list_getter(fd, factory)
            register(natural_tag, _varint_repeated(get_list, convert))
            register(
                make_tag(fd.number, WireType.LENGTH_DELIMITED),
                _varint_packed(get_list, t),
            )
        else:
            register(natural_tag, _varint_singular(fd.name, convert, siblings))
        return

    unpack_from, width = _FIXED_STRUCTS[t]
    if fd.is_repeated:
        get_list = _make_list_getter(fd, factory)
        register(natural_tag, _fixed_repeated(get_list, unpack_from, width))
        register(
            make_tag(fd.number, WireType.LENGTH_DELIMITED),
            _fixed_packed(get_list, _FIXED_DTYPES[t]),
        )
    else:
        register(natural_tag, _fixed_singular(fd.name, unpack_from, width, siblings))


def compile_plan(
    descriptor: MessageDescriptor,
    factory: MessageFactory,
    cache: dict[str, DecodePlan],
) -> DecodePlan:
    """Compile a plan for ``descriptor``; the plan is inserted into
    ``cache`` *before* its fields compile so recursive message types
    resolve to the in-flight plan instead of recursing forever."""
    plan = DecodePlan(descriptor)
    cache[descriptor.full_name] = plan
    PLAN_METRICS.plans_compiled += 1
    for fd in descriptor.fields:
        _compile_field(plan, fd, factory)
    return plan


def get_plan(descriptor: MessageDescriptor, factory: MessageFactory) -> DecodePlan:
    """The cached plan for ``descriptor`` under ``factory`` (compiling on
    first use).  Plans live on the factory — one compilation serves every
    instance of the message class."""
    cache = factory.__dict__.get("_decode_plans")
    if cache is None:
        cache = {}
        factory._decode_plans = cache
    plan = cache.get(descriptor.full_name)
    if plan is None:
        PLAN_METRICS.cache_misses += 1
        plan = compile_plan(descriptor, factory, cache)
    else:
        PLAN_METRICS.cache_hits += 1
    return plan
