"""Negotiated branchless fixed-layout wire mode (WIRE_FIXED).

Protobuf's wire format spends its flexibility budget on every message:
each field carries a tag, every integer is a varint, and the decoder is
one branch per byte.  For the RPC workloads the paper measures, the
schema on both ends is *identical and static* — so a connection that has
proven that (by exchanging a layout hash at setup) can drop the tags and
varints entirely and ship **offset-addressed fields**: a single
``struct``-packed fixed section, followed by a tail of raw fixed-width
array elements and string bytes.  Decoding is one ``struct.unpack`` plus
straight-line slot assignment — no per-byte branches.

Eligibility is per message type, decided from the schema alone:

* singular numeric scalars, bools and enums (one fixed-width slot each);
* repeated packable numerics (a u32 count slot + fixed-width elements in
  the tail);
* singular strings / bytes (a u32 byte-length slot + raw bytes in the
  tail).

Message-typed fields, repeated strings/bytes/messages and oneof members
make a type ineligible (:func:`fixed_eligibility` reports the reasons —
surfaced by ``repro codegen``).  A message instance carrying unknown
fields cannot be represented either; :meth:`FixedLayout.measure` returns
``None`` and the sender falls back to standard wire for that message.

The layout hash (:meth:`FixedLayout.layout_hash`,
:func:`negotiation_hash`) is a SHA-256 over the canonical slot
description, so any schema drift — field added, type changed, width
changed — flips the hash and the xRPC setup handshake falls back to
standard wire instead of misparsing (docs/PROTOCOL.md).

Fixed wire deliberately has no presence bits: like proto3 scalar
semantics, a decoded field is "set" iff its value is non-default.  That
makes ``decode(encode(m))`` equal to ``parse(serialize(m))`` for every
eligible message — the property the differential fuzz suite checks.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from .descriptor import FieldType, MessageDescriptor
from .message import Message, MessageFactory, _RepeatedField
from .utf8 import validate_utf8
from .wire_format import WireFormatError

__all__ = [
    "WIRE_FIXED",
    "WIRE_STANDARD",
    "FixedWireError",
    "FieldSpec",
    "FixedLayout",
    "SizedFixed",
    "fixed_eligibility",
    "get_fixed_layout",
    "specs_of_descriptor",
    "negotiation_hash",
    "service_types",
]

#: Wire-mode values carried in the frame prefix byte (the gRPC
#: "compressed" flag position): 0 = standard protobuf wire, 2 = fixed
#: layout.  1 remains "compressed", which the stack rejects.
WIRE_STANDARD = 0
WIRE_FIXED = 2


class FixedWireError(WireFormatError):
    """Malformed fixed-layout payload (truncated, trailing bytes, or a
    length slot pointing past the end)."""


#: struct format character per fixed-section slot / tail element.
_SCALAR_FMT = {
    FieldType.BOOL: "B",
    FieldType.INT32: "i",
    FieldType.SINT32: "i",
    FieldType.SFIXED32: "i",
    FieldType.ENUM: "i",
    FieldType.UINT32: "I",
    FieldType.FIXED32: "I",
    FieldType.FLOAT: "f",
    FieldType.INT64: "q",
    FieldType.SINT64: "q",
    FieldType.SFIXED64: "q",
    FieldType.UINT64: "Q",
    FieldType.FIXED64: "Q",
    FieldType.DOUBLE: "d",
}

_FMT_WIDTH = {"B": 1, "i": 4, "I": 4, "f": 4, "q": 8, "Q": 8, "d": 8}

# Slot categories.
_SCALAR = "scalar"
_ARRAY = "array"  # u32 count slot + count * width tail bytes
_BLOB = "blob"  # u32 byte-length slot + raw tail bytes


@dataclass(frozen=True)
class FieldSpec:
    """The schema facts fixed-layout eligibility depends on — producible
    from a :class:`FieldDescriptor` *or* an offload-side ``AdtField``, so
    both ends derive byte-identical layouts."""

    name: str
    number: int
    kind: FieldType
    repeated: bool
    in_oneof: bool


def specs_of_descriptor(descriptor: MessageDescriptor) -> list[FieldSpec]:
    return [
        FieldSpec(
            name=fd.name,
            number=fd.number,
            kind=fd.type,
            repeated=fd.is_repeated,
            in_oneof=fd.containing_oneof is not None,
        )
        for fd in descriptor.fields
    ]


def _classify(spec: FieldSpec) -> tuple[str, str] | str:
    """Slot ``(category, fmt)`` for an eligible field, or the reason
    string making the containing type ineligible."""
    if spec.kind is FieldType.MESSAGE:
        return f"field {spec.name}: message-typed fields need pointers"
    if spec.in_oneof:
        return f"field {spec.name}: oneof members have no fixed slot"
    if spec.kind in (FieldType.STRING, FieldType.BYTES):
        if spec.repeated:
            return (
                f"field {spec.name}: repeated {spec.kind.value} has no "
                "bounded layout"
            )
        return (_BLOB, "I")
    fmt = _SCALAR_FMT.get(spec.kind)
    if fmt is None:
        return f"field {spec.name}: {spec.kind.value} is not fixable"
    if spec.repeated:
        return (_ARRAY, fmt)
    return (_SCALAR, fmt)


def fixed_eligibility(specs: list[FieldSpec]) -> tuple[bool, list[str]]:
    """Whether a type with these fields can ride fixed wire; when not,
    the per-field reasons."""
    reasons = [c for c in map(_classify, specs) if isinstance(c, str)]
    return (not reasons, reasons)


@dataclass(frozen=True)
class _Slot:
    spec: FieldSpec
    category: str
    fmt: str  # scalar slot format; element format for arrays


class SizedFixed:
    """A measured fixed-wire message: knows its size, emits in place.

    The fixed-wire analog of
    :class:`~repro.proto.encode_plan.SizedMessage` — same
    ``size``/``emit_into`` surface, so the zero-copy framed send path
    (reserve, write header, emit payload in place) works unchanged.
    """

    __slots__ = ("layout", "size", "_fixed_values", "_tails")

    def __init__(self, layout: "FixedLayout", fixed_values, tails, size: int) -> None:
        self.layout = layout
        self.size = size
        self._fixed_values = fixed_values
        self._tails = tails

    def emit_into(self, buf, pos: int) -> int:
        layout = self.layout
        layout._struct.pack_into(buf, pos, *self._fixed_values)
        pos += layout.fixed_size
        for tail in self._tails:
            end = pos + len(tail)
            buf[pos:end] = tail
            pos = end
        return pos

    def to_bytes(self) -> bytes:
        out = bytearray(self.size)
        self.emit_into(out, 0)
        return bytes(out)


class FixedLayout:
    """The fixed-layout codec for one eligible message type."""

    __slots__ = (
        "full_name", "slots", "fixed_size", "_struct", "_hash_base",
        "_msg_fields", "_factory",
    )

    def __init__(self, full_name: str, specs: list[FieldSpec]) -> None:
        ok, reasons = fixed_eligibility(specs)
        if not ok:
            raise ValueError(
                f"{full_name} is not fixed-layout eligible: {'; '.join(reasons)}"
            )
        slots = []
        for spec in sorted(specs, key=lambda s: s.number):
            category, fmt = _classify(spec)
            slots.append(_Slot(spec, category, fmt))
        self.full_name = full_name
        self.slots = slots
        # Little-endian struct formats have no implicit padding, so the
        # fixed section is exactly the sum of the slot widths.
        self._struct = struct.Struct(
            "<" + "".join(s.fmt if s.category == _SCALAR else "I" for s in slots)
        )
        self.fixed_size = self._struct.size
        self._hash_base = "\n".join(self.layout_lines())
        # Message-side binding (descriptor + factory), set by
        # get_fixed_layout: enables the fast decode path that writes
        # ``msg._values`` directly instead of going through setattr
        # validation.  ADT-side layouts leave it unset — the arena
        # decoder applies the slots itself via unpack_fixed.
        self._msg_fields = None
        self._factory = None

    def bind_message_side(
        self, descriptor: MessageDescriptor, factory: MessageFactory
    ) -> "FixedLayout":
        by_name = {fd.name: fd for fd in descriptor.fields}
        self._msg_fields = [by_name[s.spec.name] for s in self.slots]
        self._factory = factory
        return self

    # -- identity -----------------------------------------------------------

    def layout_lines(self) -> list[str]:
        """Canonical per-field description the layout hash covers."""
        return [f"message {self.full_name}"] + [
            f"  {s.spec.number} {s.spec.name} {s.category} {s.fmt}"
            for s in self.slots
        ]

    def layout_hash(self, salt: str = "") -> str:
        return hashlib.sha256((self._hash_base + salt).encode()).hexdigest()

    # -- encode -------------------------------------------------------------

    def measure(self, msg: Message) -> SizedFixed | None:
        """Measure ``msg`` for fixed emission; ``None`` when this
        particular instance cannot ride fixed wire (it carries unknown
        fields, whose bytes fixed wire has no slot for)."""
        if msg._unknown:
            return None
        fixed_values = []
        tails = []
        size = self.fixed_size
        for slot in self.slots:
            v = getattr(msg, slot.spec.name)
            if slot.category == _SCALAR:
                fixed_values.append(v)
            elif slot.category == _BLOB:
                raw = v.encode("utf-8") if slot.spec.kind is FieldType.STRING else bytes(v)
                fixed_values.append(len(raw))
                tails.append(raw)
                size += len(raw)
            else:  # _ARRAY
                n = len(v)
                fixed_values.append(n)
                tail = struct.pack(f"<{n}{slot.fmt}", *v)
                tails.append(tail)
                size += len(tail)
        return SizedFixed(self, fixed_values, tails, size)

    def encode(self, msg: Message) -> bytes | None:
        sized = self.measure(msg)
        return None if sized is None else sized.to_bytes()

    # -- decode -------------------------------------------------------------

    def unpack_fixed(self, buf) -> tuple:
        """The fixed-section values, one per slot in field-number order —
        for decoders (the arena path) that apply them to a different
        object representation."""
        if len(buf) < self.fixed_size:
            raise FixedWireError(
                f"{self.full_name}: fixed section truncated "
                f"({len(buf)} < {self.fixed_size} bytes)"
            )
        return self._struct.unpack_from(buf, 0)

    def decode_into(self, msg: Message, data) -> Message:
        buf = data if isinstance(data, (bytes, bytearray, memoryview)) else bytes(data)
        end = len(buf)
        if end < self.fixed_size:
            raise FixedWireError(
                f"{self.full_name}: fixed section truncated "
                f"({end} < {self.fixed_size} bytes)"
            )
        fixed_values = self._struct.unpack_from(buf, 0)
        pos = self.fixed_size
        if self._msg_fields is not None:
            return self._decode_bound(msg, buf, fixed_values, pos, end)
        for slot, v in zip(self.slots, fixed_values):
            spec = slot.spec
            if slot.category == _SCALAR:
                if v:
                    setattr(msg, spec.name, bool(v) if spec.kind is FieldType.BOOL else v)
            elif slot.category == _BLOB:
                npos = pos + v
                if npos > end:
                    raise FixedWireError(
                        f"{self.full_name}.{spec.name}: blob overruns payload"
                    )
                if v:
                    raw = bytes(buf[pos:npos])
                    if spec.kind is FieldType.STRING:
                        try:
                            validate_utf8(raw)
                        except ValueError as exc:
                            raise FixedWireError(
                                f"{self.full_name}.{spec.name}: {exc}"
                            ) from exc
                        setattr(msg, spec.name, raw.decode("utf-8"))
                    else:
                        setattr(msg, spec.name, raw)
                pos = npos
            else:  # _ARRAY
                width = _FMT_WIDTH[slot.fmt]
                npos = pos + v * width
                if npos > end:
                    raise FixedWireError(
                        f"{self.full_name}.{spec.name}: array overruns payload"
                    )
                if v:
                    values = struct.unpack_from(f"<{v}{slot.fmt}", buf, pos)
                    if spec.kind is FieldType.BOOL:
                        values = [b != 0 for b in values]
                    getattr(msg, spec.name).extend(values)
                pos = npos
        if pos != end:
            raise FixedWireError(
                f"{self.full_name}: {end - pos} trailing bytes after fixed payload"
            )
        return msg

    def _decode_bound(self, msg: Message, buf, fixed_values, pos: int, end: int) -> Message:
        """Message-side fast path: slots apply straight into
        ``msg._values`` (the types are already exact — they came out of
        the layout's own struct formats), mirroring how the generated
        tag-wire decoder stores fields."""
        values = msg._values
        factory = self._factory
        for slot, fd, v in zip(self.slots, self._msg_fields, fixed_values):
            spec = slot.spec
            if slot.category == _SCALAR:
                if v:
                    values[spec.name] = bool(v) if spec.kind is FieldType.BOOL else v
            elif slot.category == _BLOB:
                npos = pos + v
                if npos > end:
                    raise FixedWireError(
                        f"{self.full_name}.{spec.name}: blob overruns payload"
                    )
                if v:
                    raw = bytes(buf[pos:npos])
                    if spec.kind is FieldType.STRING:
                        try:
                            validate_utf8(raw)
                        except ValueError as exc:
                            raise FixedWireError(
                                f"{self.full_name}.{spec.name}: {exc}"
                            ) from exc
                        values[spec.name] = raw.decode("utf-8")
                    else:
                        values[spec.name] = raw
                pos = npos
            else:  # _ARRAY
                width = _FMT_WIDTH[slot.fmt]
                npos = pos + v * width
                if npos > end:
                    raise FixedWireError(
                        f"{self.full_name}.{spec.name}: array overruns payload"
                    )
                if v:
                    decoded = struct.unpack_from(f"<{v}{slot.fmt}", buf, pos)
                    if spec.kind is FieldType.BOOL:
                        decoded = [b != 0 for b in decoded]
                    lst = _RepeatedField(fd, factory)
                    list.extend(lst, decoded)
                    values[spec.name] = lst
                pos = npos
        if pos != end:
            raise FixedWireError(
                f"{self.full_name}: {end - pos} trailing bytes after fixed payload"
            )
        return msg

    def parse(self, cls: type[Message], data) -> Message:
        return self.decode_into(cls(), data)


# ---------------------------------------------------------------------------
# Cache + negotiation
# ---------------------------------------------------------------------------


def get_fixed_layout(
    descriptor: MessageDescriptor, factory: MessageFactory | None = None
) -> FixedLayout | None:
    """The type's :class:`FixedLayout`, or ``None`` if ineligible.
    Cached on ``factory`` beside the decode/encode plans."""
    cache = None
    if factory is not None:
        cache = getattr(factory, "_fixed_layouts", None)
        if cache is None:
            cache = factory._fixed_layouts = {}
        if descriptor.full_name in cache:
            return cache[descriptor.full_name]
    specs = specs_of_descriptor(descriptor)
    ok, _ = fixed_eligibility(specs)
    layout = None
    if ok:
        layout = FixedLayout(descriptor.full_name, specs)
        if factory is not None:
            layout.bind_message_side(descriptor, factory)
    if cache is not None:
        cache[descriptor.full_name] = layout
    return layout


def service_types(service) -> list[MessageDescriptor]:
    """The unique request/response types of a service, by full name."""
    seen: dict[str, MessageDescriptor] = {}
    for m in service.methods:
        for desc in (m.input_type, m.output_type):
            seen.setdefault(desc.full_name, desc)
    return [seen[k] for k in sorted(seen)]


def negotiation_hash(types, salt: str = "") -> str:
    """Connection-setup hash over every type the connection may carry:
    eligible types contribute their full slot layout, ineligible ones
    just their name (they stay on standard wire either way, but a type
    flipping eligibility across versions must still flip the hash)."""
    lines = []
    for desc in sorted(types, key=lambda d: d.full_name):
        specs = specs_of_descriptor(desc)
        ok, _ = fixed_eligibility(specs)
        if ok:
            lines += FixedLayout(desc.full_name, specs).layout_lines()
        else:
            lines.append(f"message {desc.full_name} ineligible")
    return hashlib.sha256(("\n".join(lines) + salt).encode()).hexdigest()
