"""proto3 canonical JSON mapping: ``MessageToJson`` / ``ParseJson``.

Implements the proto3 JSON rules gRPC transcoding and tooling rely on:

* field names mapped to lowerCamelCase (original names accepted on parse);
* 64-bit integers as decimal **strings** (JavaScript-safety rule);
* ``bytes`` as standard base64 (padded; URL-safe accepted on parse);
* floats as numbers, with ``"NaN"``/``"Infinity"``/``"-Infinity"``
  strings for the non-finite values;
* enums by value name (unknown values fall back to numbers), numbers
  accepted on parse;
* messages as objects, repeated fields as arrays;
* proto3 presence: unset fields are omitted when printing (an
  ``always_print`` flag emits defaults instead); ``null`` means default
  on parse.
"""

from __future__ import annotations

import base64
import json
import math

from .descriptor import FieldDescriptor, FieldType
from .message import Message

__all__ = ["message_to_json", "message_to_dict", "parse_json", "parse_dict", "JsonFormatError"]


class JsonFormatError(ValueError):
    """Input violates the proto3 JSON mapping."""


def to_camel(name: str) -> str:
    parts = name.split("_")
    return parts[0] + "".join(p.capitalize() for p in parts[1:] if p)


_I64_TYPES = frozenset(
    {FieldType.INT64, FieldType.SINT64, FieldType.SFIXED64, FieldType.UINT64, FieldType.FIXED64}
)


def _scalar_to_json(fd: FieldDescriptor, value):
    t = fd.type
    if t in _I64_TYPES:
        return str(value)
    if t is FieldType.BYTES:
        return base64.b64encode(value).decode("ascii")
    if t in (FieldType.FLOAT, FieldType.DOUBLE):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if t is FieldType.ENUM and fd.enum_type is not None:
        named = fd.enum_type.value_by_number(value)
        return named.name if named is not None else value
    return value


def message_to_dict(msg: Message, always_print: bool = False) -> dict:
    """The JSON object for ``msg`` as Python primitives."""
    out: dict = {}
    fields = msg.DESCRIPTOR.fields_sorted() if always_print else [
        fd for fd, _ in msg.ListFields()
    ]
    for fd in fields:
        value = getattr(msg, fd.name)
        key = to_camel(fd.name)
        if fd.is_repeated:
            if not value and not always_print:
                continue
            if fd.type is FieldType.MESSAGE:
                out[key] = [message_to_dict(v, always_print) for v in value]
            else:
                out[key] = [_scalar_to_json(fd, v) for v in value]
        elif fd.type is FieldType.MESSAGE:
            if fd.name in msg._values:
                out[key] = message_to_dict(value, always_print)
            elif always_print:
                out[key] = None
        else:
            out[key] = _scalar_to_json(fd, value)
    return out


def message_to_json(msg: Message, indent: int | None = None, always_print: bool = False) -> str:
    return json.dumps(message_to_dict(msg, always_print), indent=indent)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_INT_TYPES = frozenset(
    {
        FieldType.INT32, FieldType.SINT32, FieldType.SFIXED32,
        FieldType.UINT32, FieldType.FIXED32,
    }
) | _I64_TYPES


def _scalar_from_json(fd: FieldDescriptor, value):
    t = fd.type
    if t in _INT_TYPES:
        if isinstance(value, bool):
            raise JsonFormatError(f"{fd.name}: boolean is not an integer")
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise JsonFormatError(f"{fd.name}: bad integer string {value!r}") from None
        if isinstance(value, float):
            if not value.is_integer():
                raise JsonFormatError(f"{fd.name}: non-integral number {value}")
            return int(value)
        if isinstance(value, int):
            return value
        raise JsonFormatError(f"{fd.name}: expected integer, got {type(value).__name__}")
    if t is FieldType.BOOL:
        if not isinstance(value, bool):
            raise JsonFormatError(f"{fd.name}: expected bool")
        return value
    if t in (FieldType.FLOAT, FieldType.DOUBLE):
        if isinstance(value, str):
            mapping = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}
            if value not in mapping:
                raise JsonFormatError(f"{fd.name}: bad float string {value!r}")
            return mapping[value]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise JsonFormatError(f"{fd.name}: expected number")
        return float(value)
    if t is FieldType.STRING:
        if not isinstance(value, str):
            raise JsonFormatError(f"{fd.name}: expected string")
        return value
    if t is FieldType.BYTES:
        if not isinstance(value, str):
            raise JsonFormatError(f"{fd.name}: expected base64 string")
        normalized = value.replace("-", "+").replace("_", "/").rstrip("=")
        normalized += "=" * (-len(normalized) % 4)
        try:
            return base64.b64decode(normalized, validate=True)
        except Exception:
            raise JsonFormatError(f"{fd.name}: invalid base64") from None
    if t is FieldType.ENUM:
        if isinstance(value, str):
            if fd.enum_type is not None:
                named = fd.enum_type.value_by_name(value)
                if named is not None:
                    return named.number
            raise JsonFormatError(f"{fd.name}: unknown enum value {value!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise JsonFormatError(f"{fd.name}: expected enum name or number")
        return value
    raise JsonFormatError(f"{fd.name}: unsupported type {t}")  # pragma: no cover


def parse_dict(cls: type[Message], data: dict, ignore_unknown: bool = False) -> Message:
    if not isinstance(data, dict):
        raise JsonFormatError(f"expected object, got {type(data).__name__}")
    msg = cls()
    desc = msg.DESCRIPTOR
    by_json: dict[str, FieldDescriptor] = {}
    for fd in desc.fields:
        by_json[to_camel(fd.name)] = fd
        by_json[fd.name] = fd  # original names also accepted
    for key, value in data.items():
        fd = by_json.get(key)
        if fd is None:
            if ignore_unknown:
                continue
            raise JsonFormatError(f"{desc.full_name}: unknown field {key!r}")
        if value is None:
            continue  # null == default == absent
        if fd.is_repeated:
            if not isinstance(value, list):
                raise JsonFormatError(f"{fd.name}: expected array")
            target = getattr(msg, fd.name)
            for item in value:
                if fd.type is FieldType.MESSAGE:
                    target.append(
                        parse_dict(
                            msg._FACTORY.get_class(fd.message_type), item, ignore_unknown
                        )
                    )
                else:
                    target.append(_scalar_from_json(fd, item))
        elif fd.type is FieldType.MESSAGE:
            setattr(
                msg,
                fd.name,
                parse_dict(msg._FACTORY.get_class(fd.message_type), value, ignore_unknown),
            )
        else:
            setattr(msg, fd.name, _scalar_from_json(fd, value))
    return msg


def parse_json(cls: type[Message], text: str, ignore_unknown: bool = False) -> Message:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JsonFormatError(f"invalid JSON: {exc}") from exc
    return parse_dict(cls, data, ignore_unknown)
