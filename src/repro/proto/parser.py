"""A proto3 schema parser (the ``protoc`` front end analog).

Parses the proto3 domain-specific language into the descriptor model of
:mod:`repro.proto.descriptor`.  Supported constructs cover what the paper's
offloading layer needs (§V: "we support proto3 domain-specific language"):

* ``syntax``, ``package``, ``import`` (recorded, not fetched)
* ``message`` with nested messages/enums, all scalar types, ``repeated``,
  ``optional`` (proto3.15+ presence), ``oneof``, field options (parsed and
  retained for ``packed``), ``reserved`` ranges and names
* ``enum``
* ``service`` with unary ``rpc`` methods

Deliberately unsupported (as in the paper's prototype): proto2 syntax,
``extensions``, ``group``, ``map`` fields (a map is wire-compatible with a
repeated nested message, which callers can declare explicitly), and
streaming RPCs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .descriptor import (
    SCALAR_TYPE_NAMES,
    DescriptorError,
    DescriptorPool,
    EnumDescriptor,
    EnumValueDescriptor,
    FieldDescriptor,
    FieldLabel,
    FieldType,
    FileDescriptor,
    MessageDescriptor,
    MethodDescriptor,
    ServiceDescriptor,
)

__all__ = ["ProtoParseError", "parse_proto", "compile_proto"]


class ProtoParseError(ValueError):
    """Raised on malformed .proto source, with line information."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<number>-?(?:0x[0-9a-fA-F]+|\d+(?:\.\d+)?))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*|\.[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[{}=;,<>()\[\]])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class _Token:
    kind: str
    value: str
    line: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        if kind == "bad":
            raise ProtoParseError(f"unexpected character {text!r}", line)
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line))
        line += text.count("\n")
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], filename: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.package = ""
        self.imports: list[str] = []

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            last_line = self.tokens[-1].line if self.tokens else 1
            raise ProtoParseError("unexpected end of file", last_line)
        self.pos += 1
        return tok

    def _expect(self, value: str) -> _Token:
        tok = self._next()
        if tok.value != value:
            raise ProtoParseError(f"expected {value!r}, got {tok.value!r}", tok.line)
        return tok

    def _expect_ident(self) -> _Token:
        tok = self._next()
        if tok.kind != "ident":
            raise ProtoParseError(f"expected identifier, got {tok.value!r}", tok.line)
        return tok

    def _expect_int(self) -> int:
        tok = self._next()
        if tok.kind != "number":
            raise ProtoParseError(f"expected number, got {tok.value!r}", tok.line)
        return int(tok.value, 0)

    def _accept(self, value: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.value == value:
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_file(self) -> FileDescriptor:
        fd = FileDescriptor(name=self.filename, package="")
        while self._peek() is not None:
            tok = self._peek()
            if tok.value == "syntax":
                self._next()
                self._expect("=")
                syntax = self._next().value.strip("\"'")
                self._expect(";")
                if syntax != "proto3":
                    raise ProtoParseError(f"only proto3 is supported, got {syntax!r}", tok.line)
            elif tok.value == "package":
                self._next()
                self.package = self._expect_ident().value
                fd.package = self.package
                self._expect(";")
            elif tok.value == "import":
                self._next()
                nxt = self._peek()
                if nxt is not None and nxt.value in ("public", "weak"):
                    self._next()
                self.imports.append(self._next().value.strip("\"'"))
                self._expect(";")
            elif tok.value == "option":
                self._skip_option()
            elif tok.value == "message":
                fd.messages.append(self._parse_message(self.package))
            elif tok.value == "enum":
                fd.enums.append(self._parse_enum(self.package))
            elif tok.value == "service":
                fd.services.append(self._parse_service_decl())
            elif tok.value == ";":
                self._next()
            else:
                raise ProtoParseError(f"unexpected token {tok.value!r}", tok.line)
        return fd

    def _skip_option(self) -> None:
        # 'option' ... ';'  — values can contain aggregate braces.
        tok = self._next()
        depth = 0
        while True:
            tok = self._next()
            if tok.value == "{":
                depth += 1
            elif tok.value == "}":
                depth -= 1
            elif tok.value == ";" and depth <= 0:
                return

    def _parse_field_options(self) -> dict[str, str]:
        """Parse ``[name = value, ...]`` after a field declaration."""
        options: dict[str, str] = {}
        if not self._accept("["):
            return options
        while True:
            name = self._expect_ident().value
            self._expect("=")
            value = self._next().value
            options[name] = value
            if self._accept("]"):
                return options
            self._expect(",")

    def _parse_message(self, scope: str) -> MessageDescriptor:
        self._expect("message")
        name_tok = self._expect_ident()
        name = name_tok.value
        full_name = f"{scope}.{name}" if scope else name
        desc = MessageDescriptor(name=name, full_name=full_name)
        self._expect("{")
        while not self._accept("}"):
            tok = self._peek()
            if tok is None:
                raise ProtoParseError(f"unterminated message {name!r}", name_tok.line)
            if tok.value == "message":
                desc.nested_messages.append(self._parse_message(full_name))
            elif tok.value == "enum":
                desc.nested_enums.append(self._parse_enum(full_name))
            elif tok.value == "oneof":
                self._parse_oneof(desc)
            elif tok.value == "reserved":
                self._skip_reserved()
            elif tok.value == "option":
                self._skip_option()
            elif tok.value == ";":
                self._next()
            else:
                desc.add_field(self._parse_field())
        return desc

    def _parse_oneof(self, desc: MessageDescriptor) -> None:
        self._expect("oneof")
        oneof_name = self._expect_ident().value
        desc.oneofs.append(oneof_name)
        self._expect("{")
        while not self._accept("}"):
            fd = self._parse_field(allow_label=False)
            fd.containing_oneof = oneof_name
            desc.add_field(fd)

    def _skip_reserved(self) -> None:
        self._expect("reserved")
        while True:
            tok = self._next()
            if tok.value == ";":
                return

    def _parse_field(self, allow_label: bool = True) -> FieldDescriptor:
        label = FieldLabel.SINGULAR
        tok = self._peek()
        if allow_label and tok is not None and tok.value in ("repeated", "optional"):
            # proto3 'optional' only toggles presence tracking, which our
            # in-memory model keeps for all singular fields; treat as
            # singular.
            if self._next().value == "repeated":
                label = FieldLabel.REPEATED
        type_tok = self._next()
        type_name = type_tok.value
        if type_name == "map":
            raise ProtoParseError(
                "map fields are not supported; declare the equivalent "
                "repeated message explicitly",
                type_tok.line,
            )
        name = self._expect_ident().value
        self._expect("=")
        number = self._expect_int()
        options = self._parse_field_options()
        self._expect(";")

        if type_name in SCALAR_TYPE_NAMES:
            ftype = SCALAR_TYPE_NAMES[type_name]
            symbolic = None
        else:
            # Resolved later by the pool: may be a message or an enum.
            ftype = FieldType.MESSAGE
            symbolic = type_name
        fd = FieldDescriptor(
            name=name, number=number, type=ftype, label=label, type_name=symbolic
        )
        if options.get("packed") == "false" and fd.is_repeated:
            # Honoured by the serializer via a shadow attribute; the wire
            # decoder accepts both packed and unpacked regardless.
            fd.force_unpacked = True  # type: ignore[attr-defined]
        return fd

    def _parse_enum(self, scope: str) -> EnumDescriptor:
        self._expect("enum")
        name = self._expect_ident().value
        full_name = f"{scope}.{name}" if scope else name
        values: list[EnumValueDescriptor] = []
        self._expect("{")
        while not self._accept("}"):
            tok = self._peek()
            if tok is not None and tok.value == "option":
                self._skip_option()
                continue
            if tok is not None and tok.value == "reserved":
                self._skip_reserved()
                continue
            vname = self._expect_ident().value
            self._expect("=")
            vnum = self._expect_int()
            self._parse_field_options()
            self._expect(";")
            values.append(EnumValueDescriptor(name=vname, number=vnum))
        return EnumDescriptor(name=name, full_name=full_name, values=values)

    def _parse_service_decl(self) -> ServiceDescriptor:
        self._expect("service")
        name = self._expect_ident().value
        full_name = f"{self.package}.{name}" if self.package else name
        desc = ServiceDescriptor(name=name, full_name=full_name)
        self._expect("{")
        while not self._accept("}"):
            tok = self._peek()
            if tok is not None and tok.value == "option":
                self._skip_option()
                continue
            self._expect("rpc")
            mname_tok = self._expect_ident()
            mname = mname_tok.value
            self._expect("(")
            if self._peek() is not None and self._peek().value == "stream":
                raise ProtoParseError("streaming RPCs are not supported", mname_tok.line)
            input_name = self._expect_ident().value
            self._expect(")")
            self._expect("returns")
            self._expect("(")
            if self._peek() is not None and self._peek().value == "stream":
                raise ProtoParseError("streaming RPCs are not supported", mname_tok.line)
            output_name = self._expect_ident().value
            self._expect(")")
            if self._accept("{"):
                depth = 1
                while depth:
                    v = self._next().value
                    if v == "{":
                        depth += 1
                    elif v == "}":
                        depth -= 1
            else:
                self._expect(";")
            # Store symbolic names; resolved in compile_proto once the pool
            # knows all messages.
            desc.methods.append(
                _UnresolvedMethod(mname, f"{full_name}.{mname}", input_name, output_name)  # type: ignore[arg-type]
            )
        return desc


class _UnresolvedMethod(MethodDescriptor):
    """MethodDescriptor whose input/output are still symbolic names."""

    def __init__(self, name: str, full_name: str, input_name: str, output_name: str) -> None:
        self.name = name
        self.full_name = full_name
        self.input_type = None  # type: ignore[assignment]
        self.output_type = None  # type: ignore[assignment]
        self.input_name = input_name
        self.output_name = output_name


def parse_proto(source: str, filename: str = "<string>") -> FileDescriptor:
    """Parse proto3 source text into an (unresolved) FileDescriptor."""
    return _Parser(_tokenize(source), filename).parse_file()


def compile_proto(
    source: str,
    filename: str = "<string>",
    pool: DescriptorPool | None = None,
) -> tuple[FileDescriptor, DescriptorPool]:
    """Parse ``source`` and register + resolve everything in ``pool``.

    Returns ``(file_descriptor, pool)``.  This is the full protoc analog:
    after it returns, every field's message/enum reference is linked and
    every service method's input/output descriptor is resolved.
    """
    fd = parse_proto(source, filename)
    pool = pool or DescriptorPool()
    for m in fd.messages:
        pool.add_message(m)
    for e in fd.enums:
        pool.add_enum(e)
    pool.resolve()
    for svc in fd.services:
        resolved_methods: list[MethodDescriptor] = []
        for m in svc.methods:
            assert isinstance(m, _UnresolvedMethod)
            scope = fd.package
            input_desc = pool._lookup_type(m.input_name, scope)
            output_desc = pool._lookup_type(m.output_name, scope)
            if not isinstance(input_desc, MessageDescriptor):
                raise DescriptorError(f"{m.full_name}: unknown input type {m.input_name!r}")
            if not isinstance(output_desc, MessageDescriptor):
                raise DescriptorError(f"{m.full_name}: unknown output type {m.output_name!r}")
            resolved_methods.append(
                MethodDescriptor(m.name, m.full_name, input_desc, output_desc)
            )
        svc.methods = resolved_methods
        pool.add_service(svc)
    return fd, pool
