"""Descriptors: the schema model produced by parsing ``.proto`` files.

Descriptors play the same role as protobuf's ``Descriptor``/
``FieldDescriptor`` objects: they describe message types, fields, enums and
services independently of any generated code.  Everything downstream — the
message factory, the serializer, the reference deserializer, the C++ layout
model in :mod:`repro.abi` and the Accelerator Description Table in
:mod:`repro.offload.adt` — is driven purely by descriptors, which is what
lets the DPU-side code work with *any* message type without recompilation
(paper §V-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FieldType",
    "FieldLabel",
    "FieldDescriptor",
    "EnumValueDescriptor",
    "EnumDescriptor",
    "MessageDescriptor",
    "MethodDescriptor",
    "ServiceDescriptor",
    "FileDescriptor",
    "DescriptorPool",
    "DescriptorError",
]


class DescriptorError(ValueError):
    """Raised for invalid or inconsistent schema definitions."""


class FieldType(enum.Enum):
    """proto3 scalar and composite field types."""

    DOUBLE = "double"
    FLOAT = "float"
    INT32 = "int32"
    INT64 = "int64"
    UINT32 = "uint32"
    UINT64 = "uint64"
    SINT32 = "sint32"
    SINT64 = "sint64"
    FIXED32 = "fixed32"
    FIXED64 = "fixed64"
    SFIXED32 = "sfixed32"
    SFIXED64 = "sfixed64"
    BOOL = "bool"
    STRING = "string"
    BYTES = "bytes"
    MESSAGE = "message"
    ENUM = "enum"

    @property
    def is_scalar(self) -> bool:
        return self not in (FieldType.MESSAGE,)

    @property
    def is_varint(self) -> bool:
        return self in _VARINT_TYPES

    @property
    def is_packable(self) -> bool:
        """Numeric types may be packed when repeated (proto3 default)."""
        return self not in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE)

    @property
    def is_zigzag(self) -> bool:
        return self in (FieldType.SINT32, FieldType.SINT64)

    @property
    def is_signed(self) -> bool:
        return self in (
            FieldType.INT32,
            FieldType.INT64,
            FieldType.SINT32,
            FieldType.SINT64,
            FieldType.SFIXED32,
            FieldType.SFIXED64,
        )


_VARINT_TYPES = frozenset(
    {
        FieldType.INT32,
        FieldType.INT64,
        FieldType.UINT32,
        FieldType.UINT64,
        FieldType.SINT32,
        FieldType.SINT64,
        FieldType.BOOL,
        FieldType.ENUM,
    }
)

#: Map of type keyword in .proto source to FieldType.
SCALAR_TYPE_NAMES = {t.value: t for t in FieldType if t not in (FieldType.MESSAGE, FieldType.ENUM)}


class FieldLabel(enum.Enum):
    SINGULAR = "singular"
    REPEATED = "repeated"


@dataclass
class FieldDescriptor:
    """One field of a message.

    ``message_type`` / ``enum_type`` are resolved by the
    :class:`DescriptorPool` after all types have been registered, mirroring
    protoc's two-pass compilation (types may be referenced before they are
    defined).
    """

    name: str
    number: int
    type: FieldType
    label: FieldLabel = FieldLabel.SINGULAR
    type_name: str | None = None  # unresolved message/enum type name
    message_type: "MessageDescriptor | None" = None
    enum_type: "EnumDescriptor | None" = None
    json_name: str | None = None
    containing_oneof: str | None = None

    @property
    def is_repeated(self) -> bool:
        return self.label is FieldLabel.REPEATED

    @property
    def is_packed(self) -> bool:
        """proto3 packs repeated numeric fields by default."""
        return self.is_repeated and self.type.is_packable

    def default_value(self):
        """proto3 zero-value for this field."""
        if self.is_repeated:
            return []
        t = self.type
        if t is FieldType.STRING:
            return ""
        if t is FieldType.BYTES:
            return b""
        if t is FieldType.BOOL:
            return False
        if t in (FieldType.FLOAT, FieldType.DOUBLE):
            return 0.0
        if t is FieldType.MESSAGE:
            return None
        return 0

    def validate(self) -> None:
        if self.number < 1 or self.number > (1 << 29) - 1:
            raise DescriptorError(f"field {self.name!r}: number {self.number} out of range")
        if 19000 <= self.number <= 19999:
            raise DescriptorError(f"field {self.name!r}: numbers 19000-19999 are reserved")
        if self.type in (FieldType.MESSAGE, FieldType.ENUM) and not (
            self.message_type or self.enum_type or self.type_name
        ):
            raise DescriptorError(f"field {self.name!r}: composite type without a type name")


@dataclass
class EnumValueDescriptor:
    name: str
    number: int


@dataclass
class EnumDescriptor:
    name: str
    full_name: str
    values: list[EnumValueDescriptor] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_number: dict[int, EnumValueDescriptor] = {}
        self._by_name: dict[str, EnumValueDescriptor] = {}
        for v in self.values:
            self._by_number.setdefault(v.number, v)
            if v.name in self._by_name:
                raise DescriptorError(f"enum {self.full_name}: duplicate value name {v.name!r}")
            self._by_name[v.name] = v
        if self.values and self.values[0].number != 0:
            raise DescriptorError(f"enum {self.full_name}: first value must be zero in proto3")

    def value_by_number(self, number: int) -> EnumValueDescriptor | None:
        return self._by_number.get(number)

    def value_by_name(self, name: str) -> EnumValueDescriptor | None:
        return self._by_name.get(name)


@dataclass
class MessageDescriptor:
    """Describes one message type: its fields, nested types and oneofs."""

    name: str
    full_name: str
    fields: list[FieldDescriptor] = field(default_factory=list)
    nested_messages: list["MessageDescriptor"] = field(default_factory=list)
    nested_enums: list[EnumDescriptor] = field(default_factory=list)
    oneofs: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        self._by_number: dict[int, FieldDescriptor] = {}
        self._by_name: dict[str, FieldDescriptor] = {}
        for f in self.fields:
            f.validate()
            if f.number in self._by_number:
                raise DescriptorError(
                    f"message {self.full_name}: duplicate field number {f.number}"
                )
            if f.name in self._by_name:
                raise DescriptorError(
                    f"message {self.full_name}: duplicate field name {f.name!r}"
                )
            self._by_number[f.number] = f
            self._by_name[f.name] = f

    def add_field(self, fd: FieldDescriptor) -> None:
        self.fields.append(fd)
        self._rebuild_indexes()

    def field_by_number(self, number: int) -> FieldDescriptor | None:
        return self._by_number.get(number)

    def field_by_name(self, name: str) -> FieldDescriptor | None:
        return self._by_name.get(name)

    def fields_sorted(self) -> list[FieldDescriptor]:
        """Fields in ascending field-number order (serialization order)."""
        return sorted(self.fields, key=lambda f: f.number)

    def iter_message_fields(self) -> Iterator[FieldDescriptor]:
        for f in self.fields:
            if f.type is FieldType.MESSAGE:
                yield f

    def transitive_messages(self) -> list["MessageDescriptor"]:
        """This message plus every message type reachable through its
        fields, depth-first, deduplicated.  This is the set an ADT for this
        root type must describe (paper §V-B: "recursively including all
        nested field message types")."""
        seen: dict[str, MessageDescriptor] = {}
        stack = [self]
        while stack:
            m = stack.pop()
            if m.full_name in seen:
                continue
            seen[m.full_name] = m
            for f in m.fields:
                if f.message_type is not None:
                    stack.append(f.message_type)
        return list(seen.values())


@dataclass
class MethodDescriptor:
    """A unary RPC method (the compatibility layer supports unary calls,
    paper §V-D)."""

    name: str
    full_name: str
    input_type: MessageDescriptor
    output_type: MessageDescriptor


@dataclass
class ServiceDescriptor:
    name: str
    full_name: str
    methods: list[MethodDescriptor] = field(default_factory=list)

    def method_by_name(self, name: str) -> MethodDescriptor | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None


@dataclass
class FileDescriptor:
    name: str
    package: str
    messages: list[MessageDescriptor] = field(default_factory=list)
    enums: list[EnumDescriptor] = field(default_factory=list)
    services: list[ServiceDescriptor] = field(default_factory=list)


class DescriptorPool:
    """Registry of all known types; resolves cross-references.

    Mirrors protobuf's ``DescriptorPool``: types register under their fully
    qualified name, and fields whose ``type_name`` was left symbolic during
    parsing are linked here.
    """

    def __init__(self) -> None:
        self._messages: dict[str, MessageDescriptor] = {}
        self._enums: dict[str, EnumDescriptor] = {}
        self._services: dict[str, ServiceDescriptor] = {}

    # -- registration ------------------------------------------------------

    def add_message(self, desc: MessageDescriptor) -> MessageDescriptor:
        if desc.full_name in self._messages:
            raise DescriptorError(f"duplicate message type {desc.full_name!r}")
        self._messages[desc.full_name] = desc
        for nested in desc.nested_messages:
            self.add_message(nested)
        for nested in desc.nested_enums:
            self.add_enum(nested)
        return desc

    def add_enum(self, desc: EnumDescriptor) -> EnumDescriptor:
        if desc.full_name in self._enums:
            raise DescriptorError(f"duplicate enum type {desc.full_name!r}")
        self._enums[desc.full_name] = desc
        return desc

    def add_service(self, desc: ServiceDescriptor) -> ServiceDescriptor:
        if desc.full_name in self._services:
            raise DescriptorError(f"duplicate service {desc.full_name!r}")
        self._services[desc.full_name] = desc
        return desc

    # -- lookup ------------------------------------------------------------

    def message(self, full_name: str) -> MessageDescriptor:
        try:
            return self._messages[full_name]
        except KeyError:
            raise DescriptorError(f"unknown message type {full_name!r}") from None

    def enum(self, full_name: str) -> EnumDescriptor:
        try:
            return self._enums[full_name]
        except KeyError:
            raise DescriptorError(f"unknown enum type {full_name!r}") from None

    def service(self, full_name: str) -> ServiceDescriptor:
        try:
            return self._services[full_name]
        except KeyError:
            raise DescriptorError(f"unknown service {full_name!r}") from None

    def messages(self) -> list[MessageDescriptor]:
        return list(self._messages.values())

    def services(self) -> list[ServiceDescriptor]:
        return list(self._services.values())

    # -- resolution --------------------------------------------------------

    def _lookup_type(self, type_name: str, scope: str):
        """Resolve ``type_name`` the way protoc does: try the innermost
        enclosing scope first, then walk outward to the package root."""
        if type_name.startswith("."):
            fq = type_name[1:]
            return self._messages.get(fq) or self._enums.get(fq)
        parts = scope.split(".") if scope else []
        for depth in range(len(parts), -1, -1):
            prefix = ".".join(parts[:depth])
            candidate = f"{prefix}.{type_name}" if prefix else type_name
            hit = self._messages.get(candidate) or self._enums.get(candidate)
            if hit is not None:
                return hit
        return None

    def resolve(self) -> None:
        """Link all symbolic field type references.  Idempotent."""
        for desc in self._messages.values():
            scope = desc.full_name
            for f in desc.fields:
                if f.message_type is not None or f.enum_type is not None:
                    continue
                if f.type_name is None:
                    continue
                target = self._lookup_type(f.type_name, scope)
                if target is None:
                    raise DescriptorError(
                        f"{desc.full_name}.{f.name}: unresolved type {f.type_name!r}"
                    )
                if isinstance(target, MessageDescriptor):
                    f.message_type = target
                    f.type = FieldType.MESSAGE
                else:
                    f.enum_type = target
                    f.type = FieldType.ENUM
