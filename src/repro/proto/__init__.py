"""Protobuf substrate: proto3 parser, descriptors, messages, codec.

This subpackage is a from-scratch implementation of the parts of Protocol
Buffers the paper's system depends on: the proto3 schema language, the
descriptor model, dynamic message classes (the generated-code analog), the
wire format, a reference serializer/deserializer, and UTF-8 validation.

Typical use::

    from repro.proto import compile_schema

    schema = compile_schema('''
        syntax = "proto3";
        package demo;
        message Ping { uint32 seq = 1; string note = 2; }
    ''')
    Ping = schema["demo.Ping"]
    data = Ping(seq=7, note="hi").SerializeToString()
    again = Ping().ParseFromString(data)
"""

from __future__ import annotations

from .descriptor import (
    DescriptorError,
    DescriptorPool,
    EnumDescriptor,
    FieldDescriptor,
    FieldLabel,
    FieldType,
    MessageDescriptor,
    MethodDescriptor,
    ServiceDescriptor,
)
from .deserializer import (
    DecodeError,
    get_decode_mode,
    parse,
    parse_into,
    set_decode_mode,
)
from .decode_plan import PLAN_METRICS, DecodePlan, PlanMetrics, get_plan
from .encode_plan import (
    ENCODE_PLAN_METRICS,
    EncodePlan,
    EncodePlanMetrics,
    SizedMessage,
)
from .encode_plan import get_plan as get_encode_plan
from .fixed_wire import (
    WIRE_FIXED,
    WIRE_STANDARD,
    FixedLayout,
    FixedWireError,
    fixed_eligibility,
    get_fixed_layout,
    negotiation_hash,
    specs_of_descriptor,
)
from .gen_codec import (
    GeneratedDecoder,
    GeneratedEncoder,
    generate_codec_module,
    get_gen_decoder,
    get_gen_encoder,
)
from .message import FieldValueError, Message, MessageFactory
from .parser import ProtoParseError, compile_proto, parse_proto
from .serializer import (
    ENCODE_MODES,
    EncodeError,
    emit_writer,
    get_encode_mode,
    prepare_emit,
    serialize,
    serialize_into,
    serialized_size,
    set_encode_mode,
)
from .json_format import (
    JsonFormatError,
    message_to_dict,
    message_to_json,
    parse_dict,
    parse_json,
)
from .text_format import TextFormatError, message_to_string, parse_text
from .utf8 import Utf8Error, validate_utf8
from .wire_format import (
    TruncatedMessageError,
    WireFormatError,
    WireType,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    read_varint,
    varint_size,
)

__all__ = [
    "CompiledSchema",
    "compile_schema",
    "DescriptorError",
    "DescriptorPool",
    "EnumDescriptor",
    "FieldDescriptor",
    "FieldLabel",
    "FieldType",
    "MessageDescriptor",
    "MethodDescriptor",
    "ServiceDescriptor",
    "DecodeError",
    "parse",
    "parse_into",
    "set_decode_mode",
    "get_decode_mode",
    "DecodePlan",
    "PlanMetrics",
    "PLAN_METRICS",
    "get_plan",
    "EncodePlan",
    "EncodePlanMetrics",
    "ENCODE_PLAN_METRICS",
    "SizedMessage",
    "get_encode_plan",
    "GeneratedDecoder",
    "GeneratedEncoder",
    "get_gen_decoder",
    "get_gen_encoder",
    "generate_codec_module",
    "WIRE_FIXED",
    "WIRE_STANDARD",
    "FixedLayout",
    "FixedWireError",
    "fixed_eligibility",
    "get_fixed_layout",
    "negotiation_hash",
    "specs_of_descriptor",
    "FieldValueError",
    "Message",
    "MessageFactory",
    "ProtoParseError",
    "compile_proto",
    "parse_proto",
    "serialize",
    "serialize_into",
    "serialized_size",
    "prepare_emit",
    "emit_writer",
    "set_encode_mode",
    "get_encode_mode",
    "ENCODE_MODES",
    "EncodeError",
    "Utf8Error",
    "validate_utf8",
    "JsonFormatError",
    "message_to_dict",
    "message_to_json",
    "parse_dict",
    "parse_json",
    "TextFormatError",
    "message_to_string",
    "parse_text",
    "TruncatedMessageError",
    "WireFormatError",
    "WireType",
    "encode_varint",
    "read_varint",
    "varint_size",
    "encode_zigzag",
    "decode_zigzag",
]


class CompiledSchema:
    """The result of compiling one or more .proto sources: a descriptor
    pool, a message factory, and name-indexed access to generated classes
    and services."""

    def __init__(self) -> None:
        self.pool = DescriptorPool()
        self.factory = MessageFactory(self.pool)

    def add(self, source: str, filename: str = "<string>") -> "CompiledSchema":
        compile_proto(source, filename, self.pool)
        return self

    def __getitem__(self, full_name: str) -> type[Message]:
        return self.factory.get_class_by_name(full_name)

    def message_class(self, full_name: str) -> type[Message]:
        return self.factory.get_class_by_name(full_name)

    def service(self, full_name: str) -> ServiceDescriptor:
        return self.pool.service(full_name)

    def messages(self) -> list[MessageDescriptor]:
        return self.pool.messages()


def compile_schema(*sources: str) -> CompiledSchema:
    """Compile proto3 source text(s) into a :class:`CompiledSchema`."""
    schema = CompiledSchema()
    for i, src in enumerate(sources):
        schema.add(src, filename=f"<source-{i}>")
    return schema
