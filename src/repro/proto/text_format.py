"""Protobuf text format: ``MessageToString`` / ``Parse``.

The human-readable serialization protobuf ships alongside the binary
format (debug strings, golden files, config files).  Supported syntax —
the subset produced by protobuf's own printer:

* ``field: value`` for scalars, one per line (repeated fields repeat the
  line);
* ``field { ... }`` for messages;
* strings double-quoted with C-style escapes; bytes likewise (hex escapes
  for non-ASCII);
* enums printed by value name when known, parsed by name or number;
* floats via ``repr``-round-trippable decimals, with ``inf``/``nan``.
"""

from __future__ import annotations

import math

from .descriptor import FieldDescriptor, FieldType
from .message import Message

__all__ = ["message_to_string", "parse_text", "TextFormatError"]


class TextFormatError(ValueError):
    """Malformed text-format input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


# ---------------------------------------------------------------------------
# Printing
# ---------------------------------------------------------------------------

_ESCAPES = {
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    '"': '\\"',
    "\\": "\\\\",
}


def _quote_str(value: str) -> str:
    out = ['"']
    for ch in value:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20:
            out.append(f"\\{ord(ch):03o}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _quote_bytes(value: bytes) -> str:
    out = ['"']
    for b in value:
        ch = chr(b)
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif 0x20 <= b < 0x7F:
            out.append(ch)
        else:
            out.append(f"\\{b:03o}")
    out.append('"')
    return "".join(out)


def _format_float(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return repr(value)


def _format_scalar(fd: FieldDescriptor, value) -> str:
    t = fd.type
    if t is FieldType.STRING:
        return _quote_str(value)
    if t is FieldType.BYTES:
        return _quote_bytes(value)
    if t is FieldType.BOOL:
        return "true" if value else "false"
    if t in (FieldType.FLOAT, FieldType.DOUBLE):
        return _format_float(value)
    if t is FieldType.ENUM and fd.enum_type is not None:
        named = fd.enum_type.value_by_number(value)
        if named is not None:
            return named.name
    return str(value)


def message_to_string(msg: Message, indent: int = 0) -> str:
    """Render ``msg`` in protobuf text format (set fields only, in field
    number order — protobuf's printer behaviour)."""
    pad = "  " * indent
    lines: list[str] = []
    for fd, value in msg.ListFields():
        values = value if fd.is_repeated else [value]
        for v in values:
            if fd.type is FieldType.MESSAGE:
                body = message_to_string(v, indent + 1)
                if body:
                    lines.append(f"{pad}{fd.name} {{\n{body}\n{pad}}}")
                else:
                    lines.append(f"{pad}{fd.name} {{\n{pad}}}")
            else:
                lines.append(f"{pad}{fd.name}: {_format_scalar(fd, v)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1

    def _skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "#":  # comment to end of line
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            elif ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch in " \t\r,;":
                self.pos += 1
            else:
                return

    def peek(self) -> str | None:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else None

    def expect(self, ch: str) -> None:
        got = self.peek()
        if got != ch:
            raise TextFormatError(f"expected {ch!r}, got {got!r}", self.line)
        self.pos += 1

    def accept(self, ch: str) -> bool:
        if self.peek() == ch:
            self.pos += 1
            return True
        return False

    def identifier(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_."
        ):
            self.pos += 1
        if start == self.pos:
            raise TextFormatError("expected identifier", self.line)
        return self.text[start : self.pos]

    def scalar_token(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in " \t\r\n,;}{]":
            self.pos += 1
        if start == self.pos:
            raise TextFormatError("expected value", self.line)
        return self.text[start : self.pos]

    def quoted(self) -> bytes:
        self._skip_ws()
        quote = self.text[self.pos]
        if quote not in "\"'":
            raise TextFormatError("expected quoted string", self.line)
        self.pos += 1
        out = bytearray()
        while True:
            if self.pos >= len(self.text):
                raise TextFormatError("unterminated string", self.line)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == quote:
                return bytes(out)
            if ch != "\\":
                out += ch.encode("utf-8")
                continue
            esc = self.text[self.pos]
            self.pos += 1
            if esc == "n":
                out.append(10)
            elif esc == "r":
                out.append(13)
            elif esc == "t":
                out.append(9)
            elif esc in "\"'\\":
                out += esc.encode()
            elif esc == "x":
                hex_digits = self.text[self.pos : self.pos + 2]
                out.append(int(hex_digits, 16))
                self.pos += 2
            elif esc.isdigit():
                digits = esc
                while len(digits) < 3 and self.text[self.pos].isdigit():
                    digits += self.text[self.pos]
                    self.pos += 1
                out.append(int(digits, 8) & 0xFF)
            else:
                raise TextFormatError(f"unknown escape \\{esc}", self.line)

    def at_end(self) -> bool:
        return self.peek() is None


def _parse_scalar(tok: _Tokenizer, fd: FieldDescriptor):
    t = fd.type
    if t is FieldType.STRING:
        return tok.quoted().decode("utf-8")
    if t is FieldType.BYTES:
        return tok.quoted()
    word = tok.scalar_token()
    if t is FieldType.BOOL:
        if word in ("true", "True", "1"):
            return True
        if word in ("false", "False", "0"):
            return False
        raise TextFormatError(f"bad bool {word!r}", tok.line)
    if t in (FieldType.FLOAT, FieldType.DOUBLE):
        try:
            return float(word)
        except ValueError:
            raise TextFormatError(f"bad float {word!r}", tok.line) from None
    if t is FieldType.ENUM:
        if fd.enum_type is not None:
            named = fd.enum_type.value_by_name(word)
            if named is not None:
                return named.number
        try:
            return int(word, 0)
        except ValueError:
            raise TextFormatError(f"unknown enum value {word!r}", tok.line) from None
    try:
        return int(word, 0)
    except ValueError:
        raise TextFormatError(f"bad integer {word!r}", tok.line) from None


def _parse_body(tok: _Tokenizer, msg: Message, terminator: str | None) -> None:
    desc = msg.DESCRIPTOR
    while True:
        ch = tok.peek()
        if ch is None:
            if terminator is None:
                return
            raise TextFormatError(f"missing {terminator!r}", tok.line)
        if terminator is not None and ch == terminator:
            tok.pos += 1
            return
        name = tok.identifier()
        fd = desc.field_by_name(name)
        if fd is None:
            raise TextFormatError(f"{desc.full_name} has no field {name!r}", tok.line)
        if fd.type is FieldType.MESSAGE:
            tok.accept(":")  # protobuf tolerates 'field: {' too
            tok.expect("{")
            if fd.is_repeated:
                sub = getattr(msg, fd.name).add()
            else:
                sub = getattr(msg, fd.name)
                msg._values[fd.name] = sub
            _parse_body(tok, sub, "}")
            continue
        tok.expect(":")
        if fd.is_repeated and tok.peek() == "[":
            tok.pos += 1  # short-hand list: f: [1, 2, 3]
            while tok.peek() != "]":
                getattr(msg, fd.name).append(_parse_scalar(tok, fd))
            tok.pos += 1
            continue
        value = _parse_scalar(tok, fd)
        if fd.is_repeated:
            getattr(msg, fd.name).append(value)
        else:
            setattr(msg, fd.name, value)


def parse_text(cls: type[Message], text: str) -> Message:
    """Parse text format into a fresh instance of ``cls``."""
    msg = cls()
    tok = _Tokenizer(text)
    _parse_body(tok, msg, None)
    return msg
