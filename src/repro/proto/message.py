"""Dynamic message classes — the generated-code analog.

``MessageFactory`` plays the role of protoc's generated ``.pb.h/.pb.cc``
classes: given a :class:`~repro.proto.descriptor.MessageDescriptor` it
produces a Python class whose instances hold typed field values, validate
assignments, track oneof membership, and know how to serialize/parse
themselves through the reference codec.

These in-memory objects are the *logical* value of a message.  The
offloaded path in :mod:`repro.offload` produces byte-accurate C++-layout
objects instead; :func:`repro.offload.materialize.read_message` converts
those back to this representation so tests can compare the two paths for
equality.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from .descriptor import (
    DescriptorPool,
    FieldDescriptor,
    FieldType,
    MessageDescriptor,
)

__all__ = ["Message", "MessageFactory", "FieldValueError"]


class FieldValueError(TypeError):
    """Raised when a value does not fit the declared field type."""


_INT_RANGES = {
    FieldType.INT32: (-(1 << 31), (1 << 31) - 1),
    FieldType.SINT32: (-(1 << 31), (1 << 31) - 1),
    FieldType.SFIXED32: (-(1 << 31), (1 << 31) - 1),
    FieldType.UINT32: (0, (1 << 32) - 1),
    FieldType.FIXED32: (0, (1 << 32) - 1),
    FieldType.INT64: (-(1 << 63), (1 << 63) - 1),
    FieldType.SINT64: (-(1 << 63), (1 << 63) - 1),
    FieldType.SFIXED64: (-(1 << 63), (1 << 63) - 1),
    FieldType.UINT64: (0, (1 << 64) - 1),
    FieldType.FIXED64: (0, (1 << 64) - 1),
    FieldType.ENUM: (-(1 << 31), (1 << 31) - 1),
}


def _coerce_scalar(fd: FieldDescriptor, value: Any) -> Any:
    """Validate/coerce one scalar value for field ``fd``."""
    t = fd.type
    if t in _INT_RANGES:
        if isinstance(value, bool) and t is not FieldType.BOOL:
            raise FieldValueError(f"{fd.name}: bool is not an integer value")
        if not isinstance(value, int):
            raise FieldValueError(f"{fd.name}: expected int, got {type(value).__name__}")
        lo, hi = _INT_RANGES[t]
        if not lo <= value <= hi:
            raise FieldValueError(f"{fd.name}: {value} out of range for {t.value}")
        return value
    if t is FieldType.BOOL:
        if not isinstance(value, bool):
            raise FieldValueError(f"{fd.name}: expected bool, got {type(value).__name__}")
        return value
    if t in (FieldType.FLOAT, FieldType.DOUBLE):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FieldValueError(f"{fd.name}: expected float, got {type(value).__name__}")
        return float(value)
    if t is FieldType.STRING:
        if not isinstance(value, str):
            raise FieldValueError(f"{fd.name}: expected str, got {type(value).__name__}")
        return value
    if t is FieldType.BYTES:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise FieldValueError(f"{fd.name}: expected bytes, got {type(value).__name__}")
        return bytes(value)
    raise FieldValueError(f"{fd.name}: cannot assign scalar to {t.value} field")


class _RepeatedField(list):
    """A list that validates elements on mutation."""

    __slots__ = ("_fd", "_owner_factory")

    def __init__(self, fd: FieldDescriptor, factory: "MessageFactory") -> None:
        super().__init__()
        self._fd = fd
        self._owner_factory = factory

    def _check(self, value: Any) -> Any:
        fd = self._fd
        if fd.type is FieldType.MESSAGE:
            if not isinstance(value, Message):
                raise FieldValueError(f"{fd.name}: expected Message element")
            if value.DESCRIPTOR.full_name != fd.message_type.full_name:
                raise FieldValueError(
                    f"{fd.name}: expected {fd.message_type.full_name}, "
                    f"got {value.DESCRIPTOR.full_name}"
                )
            return value
        return _coerce_scalar(fd, value)

    def append(self, value: Any) -> None:  # noqa: D102
        super().append(self._check(value))

    def extend(self, values) -> None:  # noqa: D102
        super().extend(self._check(v) for v in values)

    def insert(self, index: int, value: Any) -> None:  # noqa: D102
        super().insert(index, self._check(value))

    def __setitem__(self, index, value):  # noqa: D105
        if isinstance(index, slice):
            value = [self._check(v) for v in value]
        else:
            value = self._check(value)
        super().__setitem__(index, value)

    def add(self) -> "Message":
        """For message-typed fields: append and return a new element."""
        if self._fd.type is not FieldType.MESSAGE:
            raise FieldValueError(f"{self._fd.name}: add() only valid on message fields")
        msg = self._owner_factory.get_class(self._fd.message_type)()
        super().append(msg)
        return msg


class Message:
    """Base class of all dynamically generated message classes.

    Subclasses are created by :class:`MessageFactory` and carry:

    * ``DESCRIPTOR`` — the :class:`MessageDescriptor`
    * ``_FACTORY`` — the owning factory (for nested construction)
    """

    DESCRIPTOR: MessageDescriptor
    _FACTORY: "MessageFactory"
    __slots__ = ("_values", "_unknown")

    def __init__(self, **kwargs: Any) -> None:
        self._values: dict[str, Any] = {}
        #: raw (tag + payload) bytes of unknown fields, preserved across
        #: parse/serialize like protobuf >= 3.5 (appended after known
        #: fields on re-serialization).  NOT part of message equality.
        self._unknown: bytes = b""
        for name, value in kwargs.items():
            fd = self.DESCRIPTOR.field_by_name(name)
            if fd is None:
                raise FieldValueError(
                    f"{self.DESCRIPTOR.full_name} has no field {name!r}"
                )
            if fd.is_repeated:
                getattr(self, name).extend(value)
            else:
                setattr(self, name, value)

    # -- attribute protocol --------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails; field access lands here.
        desc = type(self).DESCRIPTOR
        fd = desc.field_by_name(name)
        if fd is None:
            raise AttributeError(f"{desc.full_name} has no field {name!r}")
        values = self._values
        if name in values:
            return values[name]
        if fd.is_repeated:
            lst = _RepeatedField(fd, self._FACTORY)
            values[name] = lst
            return lst
        if fd.type is FieldType.MESSAGE:
            # proto3 semantics: reading a singular message field
            # auto-vivifies an empty submessage (like C++'s default
            # instance, but mutable here for convenience).
            sub = self._FACTORY.get_class(fd.message_type)()
            values[name] = sub
            return sub
        return fd.default_value()

    def __setattr__(self, name: str, value: Any) -> None:
        if name in Message.__slots__:
            object.__setattr__(self, name, value)
            return
        desc = type(self).DESCRIPTOR
        fd = desc.field_by_name(name)
        if fd is None:
            raise AttributeError(f"{desc.full_name} has no field {name!r}")
        if fd.is_repeated:
            lst = _RepeatedField(fd, self._FACTORY)
            lst.extend(value)
            self._values[name] = lst
            return
        if fd.type is FieldType.MESSAGE:
            if value is None:
                self._values.pop(name, None)
                return
            if not isinstance(value, Message) or (
                value.DESCRIPTOR.full_name != fd.message_type.full_name
            ):
                raise FieldValueError(
                    f"{name}: expected {fd.message_type.full_name} message"
                )
            self._values[name] = value
        else:
            self._values[name] = _coerce_scalar(fd, value)
        if fd.containing_oneof is not None:
            self._clear_other_oneof_members(fd)

    def _clear_other_oneof_members(self, fd: FieldDescriptor) -> None:
        for other in self.DESCRIPTOR.fields:
            if (
                other.containing_oneof == fd.containing_oneof
                and other.name != fd.name
            ):
                self._values.pop(other.name, None)

    # -- protobuf-style API ---------------------------------------------------

    def HasField(self, name: str) -> bool:
        """Presence: set and (for scalars) different from proto3 default,
        matching proto3 serialization semantics."""
        fd = self.DESCRIPTOR.field_by_name(name)
        if fd is None:
            raise AttributeError(f"no field {name!r}")
        if fd.is_repeated:
            raise FieldValueError("HasField is not defined for repeated fields")
        if name not in self._values:
            return False
        if fd.type is FieldType.MESSAGE:
            return True
        return self._values[name] != fd.default_value()

    def WhichOneof(self, oneof_name: str) -> str | None:
        if oneof_name not in self.DESCRIPTOR.oneofs:
            raise FieldValueError(f"no oneof {oneof_name!r}")
        for fd in self.DESCRIPTOR.fields:
            if fd.containing_oneof == oneof_name and fd.name in self._values:
                return fd.name
        return None

    def ClearField(self, name: str) -> None:
        if self.DESCRIPTOR.field_by_name(name) is None:
            raise AttributeError(f"no field {name!r}")
        self._values.pop(name, None)

    def Clear(self) -> None:
        self._values.clear()
        self._unknown = b""

    def UnknownFields(self) -> bytes:
        """Raw preserved bytes of fields this schema does not know."""
        return self._unknown

    def DiscardUnknownFields(self) -> None:
        self._unknown = b""
        for fd, value in self.ListFields():
            from .descriptor import FieldType as _FT

            if fd.type is _FT.MESSAGE:
                for sub in value if fd.is_repeated else [value]:
                    sub.DiscardUnknownFields()

    def ListFields(self) -> list[tuple[FieldDescriptor, Any]]:
        """Fields that would be serialized, in field-number order."""
        out = []
        for fd in self.DESCRIPTOR.fields_sorted():
            value = self._values.get(fd.name)
            if value is None:
                continue
            if fd.is_repeated:
                if len(value) == 0:
                    continue
            elif fd.type is not FieldType.MESSAGE and value == fd.default_value():
                continue
            out.append((fd, value))
        return out

    def SerializeToString(self) -> bytes:
        from .serializer import serialize

        return serialize(self)

    def ParseFromString(self, data) -> "Message":
        from .deserializer import parse_into

        self.Clear()
        parse_into(self, data)
        return self

    def ByteSize(self) -> int:
        from .serializer import serialized_size

        return serialized_size(self)

    def CopyFrom(self, other: "Message") -> None:
        if other.DESCRIPTOR.full_name != self.DESCRIPTOR.full_name:
            raise FieldValueError("CopyFrom between different message types")
        self.ParseFromString(other.SerializeToString())

    # -- comparison / repr ----------------------------------------------------

    def _canonical(self) -> dict[str, Any]:
        """Field map with defaults normalized away (for equality)."""
        out: dict[str, Any] = {}
        for fd, value in self.ListFields():
            if fd.type is FieldType.MESSAGE:
                if fd.is_repeated:
                    out[fd.name] = [v._canonical() for v in value]
                else:
                    canon = value._canonical()
                    if canon:
                        out[fd.name] = canon
            elif fd.type in (FieldType.FLOAT, FieldType.DOUBLE):
                vals = value if fd.is_repeated else [value]
                norm = [("nan" if math.isnan(v) else v) for v in vals]
                out[fd.name] = norm if fd.is_repeated else norm[0]
            else:
                out[fd.name] = list(value) if fd.is_repeated else value
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.DESCRIPTOR.full_name == other.DESCRIPTOR.full_name
            and self._canonical() == other._canonical()
        )

    def __hash__(self) -> int:  # messages are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        parts = ", ".join(f"{fd.name}={value!r}" for fd, value in self.ListFields())
        return f"{self.DESCRIPTOR.full_name}({parts})"


class MessageFactory:
    """Creates and caches one Python class per message descriptor."""

    def __init__(self, pool: DescriptorPool | None = None) -> None:
        self.pool = pool or DescriptorPool()
        self._classes: dict[str, type[Message]] = {}

    def get_class(self, descriptor: MessageDescriptor) -> type[Message]:
        cls = self._classes.get(descriptor.full_name)
        if cls is None:
            cls = type(
                descriptor.name,
                (Message,),
                {
                    "DESCRIPTOR": descriptor,
                    "_FACTORY": self,
                    "__slots__": (),
                    "__module__": "repro.proto.generated",
                    "__qualname__": descriptor.full_name,
                },
            )
            self._classes[descriptor.full_name] = cls
        return cls

    def get_class_by_name(self, full_name: str) -> type[Message]:
        return self.get_class(self.pool.message(full_name))

    def classes(self) -> Iterator[type[Message]]:
        for desc in self.pool.messages():
            yield self.get_class(desc)
