"""Protocol Buffers wire-format primitives.

This module implements the low-level encoding rules of the protobuf wire
format (proto3): base-128 varints, ZigZag encoding for signed integers,
field tags (field number + wire type), and the fixed-width little-endian
scalar encodings.  It is the foundation both for the reference
serializer/deserializer in :mod:`repro.proto.serializer` /
:mod:`repro.proto.deserializer` and for the offloaded arena deserializer in
:mod:`repro.offload.arena_deserializer`.

Two decoding paths are provided for varints:

* a scalar path (`read_varint`) decoding one value at a time, mirroring the
  per-element loop a CPU or DPU core runs in the paper's custom
  deserializer; and
* a vectorized batch path (`decode_packed_varints`) built on NumPy, used by
  benchmarks as the "wide" decoding analog.

All multi-byte fixed-width values are little-endian, matching the paper's
assumption (§IV-A) that both endpoints are little-endian.
"""

from __future__ import annotations

import struct
from typing import Iterable

import numpy as np

__all__ = [
    "WireType",
    "MAX_VARINT_LEN",
    "encode_varint",
    "append_varint",
    "read_varint",
    "varint_size",
    "encode_zigzag",
    "decode_zigzag",
    "make_tag",
    "split_tag",
    "read_tag",
    "encode_packed_varints",
    "encode_packed_varints_bulk",
    "decode_packed_varints",
    "decode_packed_varints_fast",
    "write_varint",
    "WireFormatError",
    "TruncatedMessageError",
]

#: Maximum number of bytes a 64-bit varint can occupy.
MAX_VARINT_LEN = 10

_U64_MASK = (1 << 64) - 1


class WireFormatError(ValueError):
    """Raised when a buffer violates the protobuf wire format."""


class TruncatedMessageError(WireFormatError):
    """Raised when a value extends past the end of the buffer."""


class WireType:
    """Protobuf wire types (proto3 subset; groups are not supported)."""

    VARINT = 0
    FIXED64 = 1
    LENGTH_DELIMITED = 2
    START_GROUP = 3  # rejected on decode
    END_GROUP = 4  # rejected on decode
    FIXED32 = 5

    _VALID = frozenset({0, 1, 2, 5})

    @classmethod
    def is_valid(cls, wire_type: int) -> bool:
        return wire_type in cls._VALID


# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------

# Precomputed single-byte encodings: the overwhelmingly common case for
# tags and small field values (the paper's "Small" message is all of these).
_ONE_BYTE = [bytes([i]) for i in range(128)]


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a base-128 varint.

    Negative values are encoded in 64-bit two's complement (always 10
    bytes), exactly as protobuf encodes negative int32/int64 fields.
    """
    value &= _U64_MASK
    if value < 128:
        return _ONE_BYTE[value]
    out = bytearray()
    while value >= 128:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def append_varint(buf: bytearray, value: int) -> None:
    """Append the varint encoding of ``value`` to ``buf`` without an
    intermediate ``bytes`` object (hot path for the serializer)."""
    value &= _U64_MASK
    while value >= 128:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def write_varint(buf, pos: int, value: int) -> int:
    """Write the varint encoding of ``value`` into ``buf`` at ``pos``.

    Returns the position past the last byte written.  ``buf`` must be a
    writable buffer (``bytearray`` or a ``memoryview`` of one); unlike
    :func:`append_varint` this targets preallocated destinations, which is
    what lets encode plans emit straight into registered send buffers.
    """
    value &= _U64_MASK
    while value >= 128:
        buf[pos] = (value & 0x7F) | 0x80
        pos += 1
        value >>= 7
    buf[pos] = value
    return pos + 1


def read_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint from ``buf`` starting at ``pos``.

    Returns ``(value, new_pos)``.  Raises :class:`TruncatedMessageError` if
    the buffer ends mid-varint and :class:`WireFormatError` if the varint is
    longer than 10 bytes (malformed).
    """
    result = 0
    shift = 0
    end = len(buf)
    while True:
        if pos >= end:
            raise TruncatedMessageError("varint extends past end of buffer")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if shift == 63 and byte > 1:
                raise WireFormatError("varint exceeds 64 bits")
            return result & _U64_MASK, pos
        shift += 7
        if shift >= 64:
            raise WireFormatError("varint longer than 10 bytes")


def varint_size(value: int) -> int:
    """Number of bytes the varint encoding of ``value`` occupies."""
    value &= _U64_MASK
    size = 1
    while value >= 128:
        value >>= 7
        size += 1
    return size


# ---------------------------------------------------------------------------
# ZigZag (sint32 / sint64)
# ---------------------------------------------------------------------------


def encode_zigzag(value: int, bits: int = 64) -> int:
    """Map a signed integer to an unsigned one with small absolute values
    mapping to small results (protobuf ``sint32``/``sint64``)."""
    if bits not in (32, 64):
        raise ValueError("bits must be 32 or 64")
    mask = (1 << bits) - 1
    return ((value << 1) ^ (value >> (bits - 1))) & mask


def decode_zigzag(value: int) -> int:
    """Inverse of :func:`encode_zigzag` (width-independent)."""
    return (value >> 1) ^ -(value & 1)


# ---------------------------------------------------------------------------
# Tags
# ---------------------------------------------------------------------------


def make_tag(field_number: int, wire_type: int) -> int:
    """Combine a field number and wire type into a tag value."""
    if field_number < 1 or field_number > (1 << 29) - 1:
        raise WireFormatError(f"field number {field_number} out of range")
    return (field_number << 3) | wire_type


def split_tag(tag: int) -> tuple[int, int]:
    """Split a tag into ``(field_number, wire_type)``."""
    return tag >> 3, tag & 0x7


def read_tag(buf, pos: int) -> tuple[int, int, int]:
    """Read a tag varint; returns ``(field_number, wire_type, new_pos)``.

    Validates that the field number is nonzero and the wire type is one we
    decode (groups are rejected, as in proto3).
    """
    tag, pos = read_varint(buf, pos)
    field_number, wire_type = split_tag(tag)
    if field_number == 0:
        raise WireFormatError("field number 0 is invalid")
    if not WireType.is_valid(wire_type):
        raise WireFormatError(f"unsupported wire type {wire_type}")
    return field_number, wire_type, pos


# ---------------------------------------------------------------------------
# Fixed-width scalars
# ---------------------------------------------------------------------------

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")
_SFIXED32 = struct.Struct("<i")
_SFIXED64 = struct.Struct("<q")
_FLOAT = struct.Struct("<f")
_DOUBLE = struct.Struct("<d")


def read_fixed32(buf, pos: int) -> tuple[int, int]:
    if pos + 4 > len(buf):
        raise TruncatedMessageError("fixed32 extends past end of buffer")
    return _FIXED32.unpack_from(buf, pos)[0], pos + 4


def read_fixed64(buf, pos: int) -> tuple[int, int]:
    if pos + 8 > len(buf):
        raise TruncatedMessageError("fixed64 extends past end of buffer")
    return _FIXED64.unpack_from(buf, pos)[0], pos + 8


def read_float(buf, pos: int) -> tuple[float, int]:
    if pos + 4 > len(buf):
        raise TruncatedMessageError("float extends past end of buffer")
    return _FLOAT.unpack_from(buf, pos)[0], pos + 4


def read_double(buf, pos: int) -> tuple[float, int]:
    if pos + 8 > len(buf):
        raise TruncatedMessageError("double extends past end of buffer")
    return _DOUBLE.unpack_from(buf, pos)[0], pos + 8


def encode_fixed32(value: int) -> bytes:
    return _FIXED32.pack(value & 0xFFFFFFFF)


def encode_fixed64(value: int) -> bytes:
    return _FIXED64.pack(value & _U64_MASK)


def encode_float(value: float) -> bytes:
    return _FLOAT.pack(value)


def encode_double(value: float) -> bytes:
    return _DOUBLE.pack(value)


# ---------------------------------------------------------------------------
# Packed repeated varints (the paper's "x512 Ints" workload)
# ---------------------------------------------------------------------------


def encode_packed_varints(values: Iterable[int]) -> bytes:
    """Encode an iterable of unsigned integers as a packed varint run
    (the payload of a packed ``repeated uint32/uint64`` field)."""
    out = bytearray()
    for v in values:
        append_varint(out, v)
    return bytes(out)


def encode_packed_varints_bulk(values: np.ndarray) -> bytes:
    """Encode a ``uint64`` NumPy array as a packed varint run.

    The vectorized mirror of :func:`decode_packed_varints`: per-value
    encoded lengths come from threshold comparisons against the base-128
    digit boundaries, then every value's base-128 digits are laid out as
    one ``(n, max_len)`` matrix (digit ``k`` is ``(v >> 7k) & 0x7F``, with
    the continuation bit on every digit but the value's last) and the
    ragged varints are compacted with a single row-major boolean index —
    no per-byte-position Python loop.  Output is byte-identical to
    repeated :func:`append_varint` — varints are always emitted in
    canonical (minimal-length) form.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    n = values.size
    if n == 0:
        return b""
    lengths = np.ones(n, dtype=np.int64)
    for k in range(1, MAX_VARINT_LEN):
        lengths += values >= np.uint64(1 << (7 * k))
    max_len = int(lengths.max())
    if max_len == 1:
        return values.astype(np.uint8).tobytes()
    k = np.arange(max_len, dtype=np.uint64)
    digits = ((values[:, None] >> (np.uint64(7) * k)) & np.uint64(0x7F)).astype(
        np.uint8
    )
    keep = k[None, :].astype(np.int64) < lengths[:, None]
    continued = k[None, :].astype(np.int64) < (lengths[:, None] - 1)
    digits[continued] |= 0x80
    # Row-major boolean selection preserves per-value digit order, so the
    # kept digits concatenate into the packed run directly.
    return digits[keep].tobytes()


def decode_packed_varints(data, count_hint: int | None = None) -> np.ndarray:
    """Decode a packed varint run into a ``uint64`` NumPy array.

    This is the vectorized analog of the per-element decode loop: byte
    continuation bits are examined with NumPy array operations and values
    are assembled group-wise.  Used by benchmarks to contrast scalar vs
    wide decoding; results are identical to repeated :func:`read_varint`.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    if raw.size == 0:
        return np.empty(0, dtype=np.uint64)
    cont = (raw & 0x80).astype(bool)
    if cont[-1]:
        raise TruncatedMessageError("packed varint run ends mid-varint")
    # Positions where a varint ends (continuation bit clear).
    ends = np.flatnonzero(~cont)
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if np.any(lengths > MAX_VARINT_LEN):
        raise WireFormatError("varint longer than 10 bytes")
    # 10-byte varints may only contribute one bit from their final byte,
    # exactly as the scalar read_varint enforces.
    boundary = ends[lengths == MAX_VARINT_LEN]
    if boundary.size and np.any(raw[boundary] > 1):
        raise WireFormatError("varint exceeds 64 bits")
    payload = (raw & 0x7F).astype(np.uint64)
    values = np.zeros(len(ends), dtype=np.uint64)
    # Accumulate byte k of every varint that has at least k+1 bytes.
    max_len = int(lengths.max())
    for k in range(max_len):
        sel = lengths > k
        idx = starts[sel] + k
        values[sel] |= payload[idx] << np.uint64(7 * k)
    if count_hint is not None and len(values) != count_hint:
        raise WireFormatError(
            f"expected {count_hint} packed elements, decoded {len(values)}"
        )
    return values


def decode_packed_varints_fast(data) -> np.ndarray:
    """Decode a packed varint run with a single segmented reduction.

    Byte-identical results to :func:`decode_packed_varints` (same malformed
    -input rejections), but instead of one masked pass per byte position
    this shifts every payload byte into place at once and sums each
    varint's bytes with ``np.add.reduceat`` — one fused pass regardless of
    the longest varint in the run.  The generated codecs use this kernel;
    the closure-table plans keep the per-position loop so the two tiers
    stay independently measurable.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    if raw.size == 0:
        return np.empty(0, dtype=np.uint64)
    cont = (raw & 0x80).astype(bool)
    if cont[-1]:
        raise TruncatedMessageError("packed varint run ends mid-varint")
    ends = np.flatnonzero(~cont)
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if np.any(lengths > MAX_VARINT_LEN):
        raise WireFormatError("varint longer than 10 bytes")
    boundary = ends[lengths == MAX_VARINT_LEN]
    if boundary.size and np.any(raw[boundary] > 1):
        raise WireFormatError("varint exceeds 64 bits")
    # Byte k of each varint shifts by 7k; k for every byte is its distance
    # from the owning varint's start.
    k = np.arange(raw.size, dtype=np.int64) - np.repeat(starts, lengths)
    shifted = (raw & 0x7F).astype(np.uint64) << (np.uint64(7) * k.astype(np.uint64))
    return np.add.reduceat(shifted, starts)
