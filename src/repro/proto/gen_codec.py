"""Generated per-type codecs — straight-line source, no closure tables.

The compiled plans in :mod:`repro.proto.decode_plan` /
:mod:`repro.proto.encode_plan` resolve the schema once but still
*interpret* a closure table per field: every field decode is a dict probe
plus an indirect call.  This module is the next tier — the protoc/nanopb
idiom of burning the schema into code.  For each
:class:`~repro.proto.descriptor.MessageDescriptor` it emits one
specialized straight-line Python decode function and one encode function
(field names, tag integers, ``struct.Struct`` unpackers, oneof sibling
pops and proto3 defaults all appearing as source constants), compiles
them with :func:`compile`/``exec`` and caches the result on the owning
:class:`~repro.proto.message.MessageFactory` beside the plans.

Decoding a message is then a single ``while`` loop whose tag dispatch is
an ``if/elif`` chain over integer literals; there is no per-field closure
call and no dict probe.  Packed varint runs additionally route through
:func:`~repro.proto.wire_format.decode_packed_varints_fast` (the
``np.add.reduceat`` kernel), which the closure-table plans deliberately
do not use so the two tiers stay independently measurable.

Both generated paths are behaviorally identical to the plans and the
interpretive reference — same values, same preserved unknown bytes, same
error classes — which the differential fuzz suite
(``tests/proto/test_codec_fuzz.py``) enforces.  Select with
``decode_mode="generated"`` / ``encode_mode="generated"``
(:class:`~repro.core.config.ProtocolConfig` or the module-level setters).

Cache traffic and compile cost are observable through the generated-tier
counters on :data:`~repro.proto.decode_plan.PLAN_METRICS` and
:data:`~repro.proto.encode_plan.ENCODE_PLAN_METRICS` (``gen_compiles``,
``gen_cache_hits``, ``gen_source_bytes``, ``gen_compile_ns``).

The offloaded twin — the same source generation applied to ADT entries —
lives in :mod:`repro.offload.arena_plan` (``ArenaGenCache``).  See
``docs/DECODER.md``.
"""

from __future__ import annotations

import time

import numpy as np

from .decode_plan import PLAN_METRICS, _FIXED_DTYPES, _FIXED_STRUCTS
from .descriptor import FieldDescriptor, FieldType, MessageDescriptor
from .deserializer import DecodeError, skip_field
from .encode_plan import (
    ENCODE_PLAN_METRICS,
    SizedMessage,
    _packed_run_encoder,
)
from .encode_plan import _FIXED_PACKERS as _ENC_FIXED_PACKERS
from .message import Message, MessageFactory, _RepeatedField
from .serializer import EncodeError, _tag_cache, wire_type_for
from .utf8 import Utf8Error
from .wire_format import (
    TruncatedMessageError,
    WireFormatError,
    WireType,
    decode_packed_varints_fast,
    make_tag,
    read_varint,
    varint_size,
    write_varint,
)

__all__ = [
    "GeneratedDecoder",
    "GeneratedEncoder",
    "get_gen_decoder",
    "get_gen_encoder",
    "decode_source",
    "encode_source",
    "generate_codec_module",
]

_U64 = 0xFFFFFFFFFFFFFFFF


# ---------------------------------------------------------------------------
# Shared cold-path helper (identical semantics to DecodePlan._parse_unknown)
# ---------------------------------------------------------------------------


def _handle_unknown(descriptor, full_name, msg, buf, tag, tag_start, pos, end):
    number = tag >> 3
    wire_type = tag & 0x7
    if number == 0:
        raise WireFormatError("field number 0 is invalid")
    if not WireType.is_valid(wire_type):
        raise WireFormatError(f"unsupported wire type {wire_type}")
    fd = descriptor.field_by_number(number)
    if fd is not None:
        raise DecodeError(
            f"{full_name}.{fd.name}: field {fd.name}: wire type "
            f"{wire_type}, expected {wire_type_for(fd)}"
        )
    pos = skip_field(buf, pos, wire_type, end)
    msg._unknown += bytes(buf[tag_start:pos])
    return pos


# ---------------------------------------------------------------------------
# Source fragments
# ---------------------------------------------------------------------------

# raw varint -> python value, as a source expression over ``raw`` (results
# identical to decode_plan._VARINT_CONVERT).
_CONVERT_EXPR = {
    FieldType.BOOL: "raw != 0",
    FieldType.UINT32: "raw & 0xFFFFFFFF",
    FieldType.UINT64: "raw",
    FieldType.INT32: "((raw & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000",
    FieldType.ENUM: "((raw & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000",
    FieldType.INT64: "(raw ^ 0x8000000000000000) - 0x8000000000000000",
    FieldType.SINT32: "(raw >> 1) ^ -(raw & 1)",
    FieldType.SINT64: "(raw >> 1) ^ -(raw & 1)",
}

# decoded uint64 run -> python list, as a source expression over ``raw``
# (results identical to decode_plan._bulk_varint_convert).
_BULK_EXPR = {
    FieldType.BOOL: "(raw != 0).tolist()",
    FieldType.UINT32: "raw.astype(_np.uint32).tolist()",
    FieldType.UINT64: "raw.tolist()",
    FieldType.INT32: "raw.astype(_np.uint32).astype(_np.int32).tolist()",
    FieldType.ENUM: "raw.astype(_np.uint32).astype(_np.int32).tolist()",
    FieldType.INT64: "raw.astype(_np.int64).tolist()",
    FieldType.SINT32: (
        "((raw >> _one).astype(_np.int64) ^ -(raw & _one).astype(_np.int64)).tolist()"
    ),
    FieldType.SINT64: (
        "((raw >> _one).astype(_np.int64) ^ -(raw & _one).astype(_np.int64)).tolist()"
    ),
}


def _to_raw_expr(t: FieldType, var: str) -> str:
    """Python value -> unsigned raw varint, as a source expression
    (results identical to encode_plan._varint_converter)."""
    if t is FieldType.BOOL:
        return f"(1 if {var} else 0)"
    if t is FieldType.SINT32:
        return f"((({var} << 1) ^ ({var} >> 31)) & 0xFFFFFFFF)"
    if t is FieldType.SINT64:
        return f"((({var} << 1) ^ ({var} >> 63)) & 0x{_U64:X})"
    return f"({var} & 0x{_U64:X})"


def _siblings_of(descriptor: MessageDescriptor, fd: FieldDescriptor) -> tuple[str, ...]:
    if fd.containing_oneof is None:
        return ()
    return tuple(
        other.name
        for other in descriptor.fields
        if other.containing_oneof == fd.containing_oneof and other.name != fd.name
    )


class _SourceBuilder:
    """Accumulates indented source lines plus the exec namespace."""

    def __init__(self, ns: dict) -> None:
        self.lines: list[str] = []
        self.ns = ns

    def add(self, indent: int, *lines: str) -> None:
        pad = "    " * indent
        for ln in lines:
            self.lines.append(pad + ln if ln else ln)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# Decode generation
# ---------------------------------------------------------------------------


class GeneratedDecoder:
    """One message type's generated straight-line decode function."""

    __slots__ = ("full_name", "descriptor", "source", "decode_into", "decode_count")

    def __init__(self, descriptor: MessageDescriptor) -> None:
        self.full_name = descriptor.full_name
        self.descriptor = descriptor
        self.source = ""
        #: ``decode_into(msg, buf, pos, end)`` — the compiled function.
        self.decode_into = None
        self.decode_count = 0

    def parse(self, msg, buf, pos: int, end: int) -> None:
        """Top-level entry: one wire message (counts toward metrics)."""
        PLAN_METRICS.count_decode(self.full_name)
        self.decode_count += 1
        self.decode_into(msg, buf, pos, end)

    def parse_range(self, msg, buf, pos: int, end: int) -> None:
        self.decode_into(msg, buf, pos, end)


def _decode_branches(
    descriptor: MessageDescriptor, factory: MessageFactory, ns: dict
) -> list[tuple[int, str, list[str]]]:
    """Per-field decode branches: ``(tag, field_name, body_lines)``."""
    branches: list[tuple[int, str, list[str]]] = []
    for i, fd in enumerate(descriptor.fields):
        t = fd.type
        name = fd.name
        natural_tag = make_tag(fd.number, wire_type_for(fd))
        siblings = _siblings_of(descriptor, fd)
        pops = [f"values.pop({s!r}, None)" for s in siblings]

        if fd.is_repeated:
            prologue = [
                f"lst = values.get({name!r})",
                "if lst is None:",
                f"    lst = _RF(_fd{i}, _F)",
                f"    values[{name!r}] = lst",
            ]
            ns[f"_fd{i}"] = fd
            if t is FieldType.MESSAGE:
                child = get_gen_decoder(fd.message_type, factory)
                ns[f"_c{i}"] = child
                ns[f"_cls{i}"] = factory.get_class(fd.message_type)
                branches.append((natural_tag, name, prologue + [
                    "n, pos = _rv(buf, pos)",
                    "npos = pos + n",
                    "if npos > end:",
                    "    raise _Trunc('submessage extends past parent')",
                    f"sub = _cls{i}()",
                    f"_c{i}.decode_into(sub, buf, pos, npos)",
                    "_la(lst, sub)",
                    "pos = npos",
                ]))
            elif t is FieldType.STRING:
                branches.append((natural_tag, name, prologue + [
                    "n, pos = _rv(buf, pos)",
                    "npos = pos + n",
                    "if npos > end:",
                    "    raise _Trunc('string extends past end')",
                    "try:",
                    "    _la(lst, str(buf[pos:npos], 'utf-8'))",
                    "except UnicodeDecodeError as exc:",
                    "    raise _U8(str(exc)) from None",
                    "pos = npos",
                ]))
            elif t is FieldType.BYTES:
                branches.append((natural_tag, name, prologue + [
                    "n, pos = _rv(buf, pos)",
                    "npos = pos + n",
                    "if npos > end:",
                    "    raise _Trunc('bytes extends past end')",
                    "_la(lst, bytes(buf[pos:npos]))",
                    "pos = npos",
                ]))
            elif t.is_varint:
                packed_tag = make_tag(fd.number, WireType.LENGTH_DELIMITED)
                branches.append((packed_tag, name, prologue + [
                    "n, pos = _rv(buf, pos)",
                    "run_end = pos + n",
                    "if run_end > end:",
                    "    raise _Trunc('packed run extends past end')",
                    "raw = _dpf(buf[pos:run_end])",
                    f"_le(lst, {_BULK_EXPR[t]})",
                    "pos = run_end",
                ]))
                branches.append((natural_tag, name, prologue + [
                    "if pos >= end:",
                    "    raise _Trunc('varint extends past end of buffer')",
                    "b = buf[pos]",
                    "if b < 0x80:",
                    "    raw = b",
                    "    pos += 1",
                    "else:",
                    "    raw, pos = _rv(buf, pos)",
                    f"_la(lst, {_CONVERT_EXPR[t]})",
                ]))
            else:  # fixed-width numeric
                unpack_from, width = _FIXED_STRUCTS[t]
                ns[f"_u{i}"] = unpack_from
                ns[f"_dt{i}"] = _FIXED_DTYPES[t]
                packed_tag = make_tag(fd.number, WireType.LENGTH_DELIMITED)
                branches.append((packed_tag, name, prologue + [
                    "n, pos = _rv(buf, pos)",
                    "run_end = pos + n",
                    "if run_end > end:",
                    "    raise _Trunc('packed run extends past end')",
                    f"if n % {width}:",
                    "    raise _Wfe('packed run length mismatch')",
                    f"_le(lst, _np.frombuffer(buf[pos:run_end], _dt{i}).tolist())",
                    "pos = run_end",
                ]))
                branches.append((natural_tag, name, prologue + [
                    f"npos = pos + {width}",
                    "if npos > end:",
                    "    raise _Trunc('fixed-width value extends past end')",
                    f"_la(lst, _u{i}(buf, pos)[0])",
                    "pos = npos",
                ]))
            continue

        # -- singular --------------------------------------------------------
        if t is FieldType.MESSAGE:
            child = get_gen_decoder(fd.message_type, factory)
            ns[f"_c{i}"] = child
            ns[f"_cls{i}"] = factory.get_class(fd.message_type)
            branches.append((natural_tag, name, [
                "n, pos = _rv(buf, pos)",
                "npos = pos + n",
                "if npos > end:",
                "    raise _Trunc('submessage extends past parent')",
                f"sub = values.get({name!r})",
                "if sub is None:",
                f"    sub = _cls{i}()",
                f"    values[{name!r}] = sub",
                f"_c{i}.decode_into(sub, buf, pos, npos)",
                "pos = npos",
            ]))
        elif t is FieldType.STRING:
            branches.append((natural_tag, name, [
                "n, pos = _rv(buf, pos)",
                "npos = pos + n",
                "if npos > end:",
                "    raise _Trunc('string extends past end')",
                "try:",
                f"    values[{name!r}] = str(buf[pos:npos], 'utf-8')",
                "except UnicodeDecodeError as exc:",
                "    raise _U8(str(exc)) from None",
                *pops,
                "pos = npos",
            ]))
        elif t is FieldType.BYTES:
            branches.append((natural_tag, name, [
                "n, pos = _rv(buf, pos)",
                "npos = pos + n",
                "if npos > end:",
                "    raise _Trunc('bytes extends past end')",
                f"values[{name!r}] = bytes(buf[pos:npos])",
                *pops,
                "pos = npos",
            ]))
        elif t.is_varint:
            branches.append((natural_tag, name, [
                "if pos >= end:",
                "    raise _Trunc('varint extends past end of buffer')",
                "b = buf[pos]",
                "if b < 0x80:",
                "    raw = b",
                "    pos += 1",
                "else:",
                "    raw, pos = _rv(buf, pos)",
                f"values[{name!r}] = {_CONVERT_EXPR[t]}",
                *pops,
            ]))
        else:  # fixed-width numeric
            unpack_from, width = _FIXED_STRUCTS[t]
            ns[f"_u{i}"] = unpack_from
            branches.append((natural_tag, name, [
                f"npos = pos + {width}",
                "if npos > end:",
                "    raise _Trunc('fixed-width value extends past end')",
                f"values[{name!r}] = _u{i}(buf, pos)[0]",
                *pops,
                "pos = npos",
            ]))
    return branches


def decode_source(descriptor: MessageDescriptor, factory: MessageFactory) -> tuple[str, dict]:
    """Build the decode function source plus its exec namespace."""
    ns: dict = {
        "_rv": read_varint,
        "_dpf": decode_packed_varints_fast,
        "_np": np,
        "_one": np.uint64(1),
        "_RF": _RepeatedField,
        "_F": factory,
        "_D": descriptor,
        "_FULL": descriptor.full_name,
        "_la": list.append,
        "_le": list.extend,
        "_unk": _handle_unknown,
        "_Trunc": TruncatedMessageError,
        "_Wfe": WireFormatError,
        "_U8": Utf8Error,
        "_DE": DecodeError,
    }
    branches = _decode_branches(descriptor, factory, ns)
    b = _SourceBuilder(ns)
    b.add(0, f"# generated decoder for {descriptor.full_name}")
    b.add(0, "def _decode(msg, buf, pos, end):")
    b.add(1, "values = msg._values", "fname = None", "try:")
    b.add(2, "while pos < end:")
    b.add(3,
          "fname = None",
          "tag_start = pos",
          "b = buf[pos]",
          "if b < 0x80:",
          "    tag = b",
          "    pos += 1",
          "else:",
          "    tag, pos = _rv(buf, pos)")
    kw = "if"
    for tag, fname, body in branches:
        fd = descriptor.field_by_name(fname)
        b.add(3, f"{kw} tag == {tag}:  # {fname}: {fd.type.name.lower()}")
        b.add(4, f"fname = {fname!r}")
        b.add(4, *body)
        kw = "elif"
    if branches:
        b.add(3, "else:")
        b.add(4, "pos = _unk(_D, _FULL, msg, buf, tag, tag_start, pos, end)")
    else:
        b.add(3, "pos = _unk(_D, _FULL, msg, buf, tag, tag_start, pos, end)")
    b.add(1,
          "except (_Wfe, _U8) as exc:",
          "    if fname is None:",
          "        raise",
          "    raise _DE(f'{_FULL}.{fname}: {exc}') from exc",
          "if pos != end:",
          "    raise _DE(_FULL + ': field payload overran submessage end')",
          "return pos")
    return b.source(), ns


_compile_depth = 0


def get_gen_decoder(descriptor: MessageDescriptor, factory: MessageFactory) -> GeneratedDecoder:
    """The cached generated decoder for ``descriptor`` under ``factory``
    (generating + compiling on first use)."""
    global _compile_depth
    cache = factory.__dict__.get("_gen_decoders")
    if cache is None:
        cache = {}
        factory._gen_decoders = cache
    codec = cache.get(descriptor.full_name)
    if codec is not None:
        PLAN_METRICS.gen_cache_hits += 1
        return codec
    codec = GeneratedDecoder(descriptor)
    # Insert before generating so recursive message types resolve to the
    # in-flight codec (decode_into binds by attribute at call time).
    cache[descriptor.full_name] = codec
    t0 = time.perf_counter_ns()
    _compile_depth += 1
    try:
        source, ns = decode_source(descriptor, factory)
        exec(compile(source, f"<gen_decode {descriptor.full_name}>", "exec"), ns)
    finally:
        _compile_depth -= 1
    codec.decode_into = ns["_decode"]
    codec.source = source
    PLAN_METRICS.gen_compiles += 1
    PLAN_METRICS.gen_source_bytes += len(source)
    if _compile_depth == 0:
        PLAN_METRICS.gen_compile_ns += time.perf_counter_ns() - t0
    return codec


# ---------------------------------------------------------------------------
# Encode generation
# ---------------------------------------------------------------------------


class GeneratedEncoder:
    """Generated serializer for one message descriptor.

    Exposes the same public surface as
    :class:`~repro.proto.encode_plan.EncodePlan` (``serialized_size`` /
    ``serialize`` / ``serialize_into`` / ``measure`` returning a
    :class:`~repro.proto.encode_plan.SizedMessage`) so the zero-copy
    framed send path works unchanged; ``_size``/``_emit`` are the
    compiled straight-line functions instead of closure-table walks.
    """

    __slots__ = ("descriptor", "full_name", "source", "_size", "_emit")

    def __init__(self, descriptor: MessageDescriptor) -> None:
        self.descriptor = descriptor
        self.full_name = descriptor.full_name
        self.source = ""
        self._size = None  # (msg, memo) -> int
        self._emit = None  # (msg, buf, pos, memo) -> int

    def serialized_size(self, msg: Message) -> int:
        return self._size(msg, {})

    def serialize(self, msg: Message) -> bytes:
        memo: dict = {}
        size = self._size(msg, memo)
        out = bytearray(size)
        self._emit(msg, out, 0, memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.full_name)
        metrics.bytes_emitted += size
        return bytes(out)

    def serialize_into(self, msg: Message, buf, offset: int = 0) -> int:
        memo: dict = {}
        size = self._size(msg, memo)
        if offset + size > len(buf):
            raise EncodeError(
                f"buffer too small: need {size} bytes at offset {offset}, "
                f"have {len(buf) - offset}"
            )
        end = self._emit(msg, buf, offset, memo)
        metrics = ENCODE_PLAN_METRICS
        metrics.count_encode(self.full_name)
        metrics.bytes_emitted += size
        metrics.copies_avoided += 1
        return end

    def measure(self, msg: Message) -> SizedMessage:
        memo: dict = {}
        size = self._size(msg, memo)
        return SizedMessage(self, msg, size, memo)


def _encode_field_fragments(
    descriptor: MessageDescriptor, factory: MessageFactory, ns: dict
) -> list[tuple[str, str, list[str], list[str]]]:
    """Per-field ``(name, present_expr, size_lines, emit_lines)`` in
    field-number order — the plan's closure tuple, as source."""
    out = []
    for i, fd in enumerate(descriptor.fields_sorted()):
        t = fd.type
        tag, packed_tag, tag_len = _tag_cache(fd)
        ns[f"_t{i}"] = bytes(tag)

        if fd.is_repeated:
            present = "len(v)"
            if t is FieldType.MESSAGE:
                child = get_gen_encoder(fd.message_type, factory)
                ns[f"_e{i}"] = child
                size_lines = [
                    f"child = _e{i}._size",
                    "for e in v:",
                    "    n = child(e, memo)",
                    "    memo[id(e)] = n",
                    f"    total += {tag_len} + _vs(n) + n",
                ]
                emit_lines = [
                    f"child = _e{i}._emit",
                    "for e in v:",
                    f"    buf[pos:pos + {tag_len}] = _t{i}",
                    f"    pos = _wv(buf, pos + {tag_len}, memo[id(e)])",
                    "    pos = child(e, buf, pos, memo)",
                ]
            elif t is FieldType.STRING:
                size_lines = [
                    "datas = [e.encode('utf-8') for e in v]",
                    "memo[id(v)] = datas",
                    "for d in datas:",
                    "    n = len(d)",
                    f"    total += {tag_len} + _vs(n) + n",
                ]
                emit_lines = [
                    "for d in memo[id(v)]:",
                    f"    buf[pos:pos + {tag_len}] = _t{i}",
                    f"    pos = _wv(buf, pos + {tag_len}, len(d))",
                    "    end = pos + len(d)",
                    "    buf[pos:end] = d",
                    "    pos = end",
                ]
            elif t is FieldType.BYTES:
                size_lines = [
                    "for d in v:",
                    "    n = len(d)",
                    f"    total += {tag_len} + _vs(n) + n",
                ]
                emit_lines = [
                    "for d in v:",
                    f"    buf[pos:pos + {tag_len}] = _t{i}",
                    f"    pos = _wv(buf, pos + {tag_len}, len(d))",
                    "    end = pos + len(d)",
                    "    buf[pos:end] = d",
                    "    pos = end",
                ]
            elif fd.is_packed and not getattr(fd, "force_unpacked", False):
                ns[f"_run{i}"] = _packed_run_encoder(fd)
                ns[f"_pt{i}"] = bytes(packed_tag)
                size_lines = [
                    f"run = _run{i}(v)",
                    "memo[id(v)] = run",
                    "n = len(run)",
                    f"total += {tag_len} + _vs(n) + n",
                ]
                emit_lines = [
                    "run = memo[id(v)]",
                    f"buf[pos:pos + {tag_len}] = _pt{i}",
                    f"pos = _wv(buf, pos + {tag_len}, len(run))",
                    "end = pos + len(run)",
                    "buf[pos:end] = run",
                    "pos = end",
                ]
            elif t.is_varint:
                size_lines = [
                    f"total += len(v) * {tag_len}",
                    "for e in v:",
                    f"    total += _vs({_to_raw_expr(t, 'e')})",
                ]
                emit_lines = [
                    "for e in v:",
                    f"    buf[pos:pos + {tag_len}] = _t{i}",
                    f"    pos = _wv(buf, pos + {tag_len}, {_to_raw_expr(t, 'e')})",
                ]
            else:  # unpacked fixed-width ([packed = false])
                packer = _ENC_FIXED_PACKERS[t]
                ns[f"_p{i}"] = packer.pack_into
                width = packer.size
                size_lines = [f"total += len(v) * {tag_len + width}"]
                emit_lines = [
                    f"pack_into = _p{i}",
                    "for e in v:",
                    f"    buf[pos:pos + {tag_len}] = _t{i}",
                    f"    pos += {tag_len}",
                    "    pack_into(buf, pos, e)",
                    f"    pos += {width}",
                ]
            out.append((fd.name, present, size_lines, emit_lines))
            continue

        # -- singular --------------------------------------------------------
        if t is FieldType.MESSAGE:
            child = get_gen_encoder(fd.message_type, factory)
            ns[f"_e{i}"] = child
            out.append((fd.name, "True", [
                f"n = _e{i}._size(v, memo)",
                "memo[id(v)] = n",
                f"total += {tag_len} + _vs(n) + n",
            ], [
                "n = memo[id(v)]",
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"pos = _wv(buf, pos + {tag_len}, n)",
                f"pos = _e{i}._emit(v, buf, pos, memo)",
            ]))
            continue

        default = fd.default_value()
        present = f"v != {default!r}"
        if t is FieldType.BOOL:
            size_lines = [f"total += {tag_len + 1}"]
            emit_lines = [
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"buf[pos + {tag_len}] = 1",
                f"pos += {tag_len + 1}",
            ]
        elif t.is_varint:
            size_lines = [f"total += {tag_len} + _vs({_to_raw_expr(t, 'v')})"]
            emit_lines = [
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"pos = _wv(buf, pos + {tag_len}, {_to_raw_expr(t, 'v')})",
            ]
        elif t is FieldType.STRING:
            size_lines = [
                "data = v.encode('utf-8')",
                "memo[id(v)] = data",
                "n = len(data)",
                f"total += {tag_len} + _vs(n) + n",
            ]
            emit_lines = [
                "data = memo[id(v)]",
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"pos = _wv(buf, pos + {tag_len}, len(data))",
                "end = pos + len(data)",
                "buf[pos:end] = data",
                "pos = end",
            ]
        elif t is FieldType.BYTES:
            size_lines = [
                "n = len(v)",
                f"total += {tag_len} + _vs(n) + n",
            ]
            emit_lines = [
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"pos = _wv(buf, pos + {tag_len}, len(v))",
                "end = pos + len(v)",
                "buf[pos:end] = v",
                "pos = end",
            ]
        else:  # fixed-width scalar
            packer = _ENC_FIXED_PACKERS[t]
            ns[f"_p{i}"] = packer.pack_into
            width = packer.size
            size_lines = [f"total += {tag_len + width}"]
            emit_lines = [
                f"buf[pos:pos + {tag_len}] = _t{i}",
                f"_p{i}(buf, pos + {tag_len}, v)",
                f"pos += {tag_len + width}",
            ]
        out.append((fd.name, present, size_lines, emit_lines))
    return out


def encode_source(descriptor: MessageDescriptor, factory: MessageFactory) -> tuple[str, dict]:
    """Build the ``_size``/``_emit`` source pair plus its namespace."""
    ns: dict = {"_vs": varint_size, "_wv": write_varint}
    fields = _encode_field_fragments(descriptor, factory, ns)
    b = _SourceBuilder(ns)
    b.add(0, f"# generated encoder for {descriptor.full_name}")
    b.add(0, "def _size(msg, memo):")
    b.add(1, "values = msg._values", "total = len(msg._unknown)")
    for name, present, size_lines, _ in fields:
        b.add(1, f"v = values.get({name!r})")
        cond = "v is not None" if present == "True" else f"v is not None and {present}"
        b.add(1, f"if {cond}:")
        b.add(2, *size_lines)
    b.add(1, "return total")
    b.add(0, "")
    b.add(0, "def _emit(msg, buf, pos, memo):")
    b.add(1, "values = msg._values")
    for name, present, _, emit_lines in fields:
        b.add(1, f"v = values.get({name!r})")
        cond = "v is not None" if present == "True" else f"v is not None and {present}"
        b.add(1, f"if {cond}:")
        b.add(2, *emit_lines)
    b.add(1,
          "unknown = msg._unknown",
          "if unknown:",
          "    end = pos + len(unknown)",
          "    buf[pos:end] = unknown",
          "    pos = end",
          "return pos")
    return b.source(), ns


def get_gen_encoder(descriptor: MessageDescriptor, factory: MessageFactory) -> GeneratedEncoder:
    """The cached generated encoder for ``descriptor`` under ``factory``
    (generating + compiling on first use)."""
    global _compile_depth
    cache = factory.__dict__.get("_gen_encoders")
    if cache is None:
        cache = {}
        factory._gen_encoders = cache
    codec = cache.get(descriptor.full_name)
    if codec is not None:
        ENCODE_PLAN_METRICS.gen_cache_hits += 1
        return codec
    codec = GeneratedEncoder(descriptor)
    cache[descriptor.full_name] = codec
    t0 = time.perf_counter_ns()
    _compile_depth += 1
    try:
        source, ns = encode_source(descriptor, factory)
        exec(compile(source, f"<gen_encode {descriptor.full_name}>", "exec"), ns)
    finally:
        _compile_depth -= 1
    codec._size = ns["_size"]
    codec._emit = ns["_emit"]
    codec.source = source
    ENCODE_PLAN_METRICS.gen_compiles += 1
    ENCODE_PLAN_METRICS.gen_source_bytes += len(source)
    if _compile_depth == 0:
        ENCODE_PLAN_METRICS.gen_compile_ns += time.perf_counter_ns() - t0
    return codec


# ---------------------------------------------------------------------------
# Module emission (the `repro codegen` CLI artifact)
# ---------------------------------------------------------------------------

_MODULE_TEMPLATE = '''\
"""Generated by repro.proto.gen_codec — do not edit.

source: {filename}

The per-type codec sources below are the exact text this module compiles
at import time (via repro.proto.gen_codec); they are inlined verbatim for
inspection.
"""

from repro.proto import compile_schema
from repro.proto.gen_codec import get_gen_decoder, get_gen_encoder

PROTO_SOURCE = {source!r}

_schema = compile_schema(PROTO_SOURCE)
DESCRIPTOR_POOL = _schema.pool
MESSAGE_FACTORY = _schema.factory

#: full_name -> GeneratedDecoder / GeneratedEncoder
DECODERS = {{
    m.full_name: get_gen_decoder(m, MESSAGE_FACTORY)
    for m in DESCRIPTOR_POOL.messages()
}}
ENCODERS = {{
    m.full_name: get_gen_encoder(m, MESSAGE_FACTORY)
    for m in DESCRIPTOR_POOL.messages()
}}

{inlined}
'''


def generate_codec_module(proto_source: str, filename: str = "<proto>") -> str:
    """Emit a self-contained module binding the generated codecs for every
    message in ``proto_source``, with the generated sources inlined as
    comments for inspection."""
    from . import compile_schema  # local import: avoid a cycle at module load

    schema = compile_schema(proto_source)
    blocks = []
    for m in schema.pool.messages():
        dec = get_gen_decoder(m, schema.factory)
        enc = get_gen_encoder(m, schema.factory)
        body = "\n".join(
            "# " + ln if ln else "#"
            for ln in (dec.source + "\n" + enc.source).splitlines()
        )
        blocks.append(f"# ==== {m.full_name} " + "=" * max(4, 60 - len(m.full_name)) + f"\n{body}")
    return _MODULE_TEMPLATE.format(
        filename=filename,
        source=proto_source,
        inlined="\n\n".join(blocks) or "# (no messages)",
    )
