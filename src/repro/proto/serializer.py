"""Reference protobuf serializer (the "sender side" of the datapath).

Serializes the dynamic :class:`~repro.proto.message.Message` objects into
proto3 wire format.  Output is byte-identical to what protoc-generated C++
code emits for the same logical value with fields written in ascending
field-number order, so the offloaded deserializer operates on authentic
wire bytes.

Two encode paths are available, selected by :func:`set_encode_mode` /
``ProtocolConfig.encode_mode`` or per call:

* ``"plan"`` (default) — compiled per-message encode plans
  (:mod:`repro.proto.encode_plan`) that size once and emit straight into
  caller-provided buffers; and
* ``"interpretive"`` — the descriptor-walking baseline in this module,
  kept selectable for differential testing.

Both must produce byte-identical output for every message.
"""

from __future__ import annotations

from .descriptor import FieldDescriptor, FieldType
from .message import Message
from .wire_format import (
    WireType,
    append_varint,
    encode_varint,
    encode_zigzag,
    encode_double,
    encode_fixed32,
    encode_fixed64,
    encode_float,
    make_tag,
    varint_size,
)

__all__ = [
    "serialize",
    "serialize_into",
    "serialized_size",
    "prepare_emit",
    "emit_writer",
    "set_encode_mode",
    "get_encode_mode",
    "ENCODE_MODES",
    "EncodeError",
]

#: Selectable encode paths; "plan" is the compiled closure-table fast
#: path, "generated" the straight-line source-generated tier
#: (:mod:`repro.proto.gen_codec`), "interpretive" the walking baseline.
ENCODE_MODES = ("plan", "generated", "interpretive")

_encode_mode = "plan"


class EncodeError(ValueError):
    """Raised when a message cannot be emitted into the destination
    buffer (typically: the reserved space is too small)."""


def set_encode_mode(mode: str) -> str:
    """Set the process-wide default encode mode; returns the previous one."""
    global _encode_mode
    if mode not in ENCODE_MODES:
        raise ValueError(f"unknown encode mode {mode!r} (expected one of {ENCODE_MODES})")
    previous = _encode_mode
    _encode_mode = mode
    return previous


def get_encode_mode() -> str:
    """The process-wide default encode mode."""
    return _encode_mode


def _resolve_mode(mode: str | None) -> str:
    if mode is None:
        return _encode_mode
    if mode not in ENCODE_MODES:
        raise ValueError(f"unknown encode mode {mode!r} (expected one of {ENCODE_MODES})")
    return mode


def _plan_for(msg: Message):
    # Imported lazily: encode_plan imports this module for the tag cache.
    from .encode_plan import get_plan

    return get_plan(type(msg).DESCRIPTOR, msg._FACTORY)


def _encoder_for(msg: Message, mode: str):
    """The compiled encoder serving ``mode``: an EncodePlan ("plan") or a
    GeneratedEncoder ("generated") — identical public surface."""
    if mode == "plan":
        return _plan_for(msg)
    from .gen_codec import get_gen_encoder

    return get_gen_encoder(type(msg).DESCRIPTOR, msg._FACTORY)

# Wire type used when a field of this type is emitted individually.
_WIRE_TYPE_FOR = {
    FieldType.DOUBLE: WireType.FIXED64,
    FieldType.FLOAT: WireType.FIXED32,
    FieldType.INT32: WireType.VARINT,
    FieldType.INT64: WireType.VARINT,
    FieldType.UINT32: WireType.VARINT,
    FieldType.UINT64: WireType.VARINT,
    FieldType.SINT32: WireType.VARINT,
    FieldType.SINT64: WireType.VARINT,
    FieldType.FIXED32: WireType.FIXED32,
    FieldType.FIXED64: WireType.FIXED64,
    FieldType.SFIXED32: WireType.FIXED32,
    FieldType.SFIXED64: WireType.FIXED64,
    FieldType.BOOL: WireType.VARINT,
    FieldType.STRING: WireType.LENGTH_DELIMITED,
    FieldType.BYTES: WireType.LENGTH_DELIMITED,
    FieldType.MESSAGE: WireType.LENGTH_DELIMITED,
    FieldType.ENUM: WireType.VARINT,
}


def wire_type_for(fd: FieldDescriptor) -> int:
    """Wire type of one element of field ``fd`` (unpacked)."""
    return _WIRE_TYPE_FOR[fd.type]


def _tag_cache(fd: FieldDescriptor) -> tuple[bytes, bytes, int]:
    """``(natural_tag_bytes, packed_tag_bytes, natural_tag_size)`` for
    ``fd``, encoded once and memoized on the descriptor.

    A field's tag bytes are a pure function of its number and type, so
    re-encoding the tag varint per element (the hottest serializer
    operation for repeated fields) is wasted work; protoc bakes tag
    literals into generated code the same way."""
    cache = getattr(fd, "_tag_cache", None)
    if cache is None:
        natural = encode_varint(make_tag(fd.number, _WIRE_TYPE_FOR[fd.type]))
        packed = encode_varint(make_tag(fd.number, WireType.LENGTH_DELIMITED))
        cache = fd._tag_cache = (natural, packed, len(natural))
    return cache


def _scalar_to_varint(fd: FieldDescriptor, value) -> int:
    t = fd.type
    if t is FieldType.BOOL:
        return 1 if value else 0
    if t is FieldType.SINT32:
        return encode_zigzag(value, 32)
    if t is FieldType.SINT64:
        return encode_zigzag(value, 64)
    # int32/int64/enum: negatives use 64-bit two's complement.
    return value & ((1 << 64) - 1)


def _append_scalar(out: bytearray, fd: FieldDescriptor, value) -> None:
    """Append one element's payload bytes (no tag)."""
    t = fd.type
    if t.is_varint:
        append_varint(out, _scalar_to_varint(fd, value))
    elif t is FieldType.DOUBLE:
        out += encode_double(value)
    elif t is FieldType.FLOAT:
        out += encode_float(value)
    elif t in (FieldType.FIXED64, FieldType.SFIXED64):
        out += encode_fixed64(value)
    elif t in (FieldType.FIXED32, FieldType.SFIXED32):
        out += encode_fixed32(value)
    elif t is FieldType.STRING:
        data = value.encode("utf-8")
        append_varint(out, len(data))
        out += data
    elif t is FieldType.BYTES:
        append_varint(out, len(value))
        out += value
    else:  # pragma: no cover - message handled by caller
        raise AssertionError(f"unexpected scalar type {t}")


def _append_field(out: bytearray, fd: FieldDescriptor, value) -> None:
    natural_tag, packed_tag, _ = _tag_cache(fd)
    if fd.is_repeated:
        if fd.is_packed and not getattr(fd, "force_unpacked", False):
            out += packed_tag
            packed = bytearray()
            for v in value:
                _append_scalar(packed, fd, v)
            append_varint(out, len(packed))
            out += packed
        else:
            for v in value:
                out += natural_tag
                if fd.type is FieldType.MESSAGE:
                    sub = _serialize_bytes(v)
                    append_varint(out, len(sub))
                    out += sub
                else:
                    _append_scalar(out, fd, v)
        return
    out += natural_tag
    if fd.type is FieldType.MESSAGE:
        sub = _serialize_bytes(value)
        append_varint(out, len(sub))
        out += sub
    else:
        _append_scalar(out, fd, value)


def _serialize_bytes(msg: Message) -> bytes:
    out = bytearray()
    for fd, value in msg.ListFields():
        _append_field(out, fd, value)
    out += msg._unknown  # preserved unknown fields, appended last
    return bytes(out)


def serialize(msg: Message, mode: str | None = None) -> bytes:
    """Serialize ``msg`` to proto3 wire format.

    ``mode`` overrides the process default ("plan", "generated" or
    "interpretive"); all paths emit byte-identical output.
    """
    m = _resolve_mode(mode)
    if m != "interpretive":
        return _encoder_for(msg, m).serialize(msg)
    return _serialize_bytes(msg)


def serialize_into(msg: Message, buf, offset: int = 0, mode: str | None = None) -> int:
    """Serialize ``msg`` directly into writable buffer ``buf`` at
    ``offset``; returns the end position.

    In plan mode the wire bytes are emitted in place with no intermediate
    ``bytes`` materialization — this is the zero-copy entry point the
    datapath uses to serialize into reserved block/frame space.  The
    interpretive fallback materializes and copies (the baseline being
    measured against).  Raises :class:`EncodeError` if the message does
    not fit.
    """
    m = _resolve_mode(mode)
    if m != "interpretive":
        return _encoder_for(msg, m).serialize_into(msg, buf, offset)
    data = _serialize_bytes(msg)
    end = offset + len(data)
    if end > len(buf):
        raise EncodeError(
            f"buffer too small: need {len(data)} bytes at offset {offset}, "
            f"have {len(buf) - offset}"
        )
    buf[offset:end] = data
    return end


class _PreparedBytes:
    """Interpretive counterpart of
    :class:`~repro.proto.encode_plan.SizedMessage`: the payload is already
    materialized; ``emit_into`` copies it."""

    __slots__ = ("data", "size")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.size = len(data)

    def emit_into(self, buf, offset: int = 0) -> int:
        end = offset + self.size
        if end > len(buf):
            raise EncodeError(
                f"buffer too small: need {self.size} bytes at offset {offset}, "
                f"have {len(buf) - offset}"
            )
        buf[offset:end] = self.data
        return end

    def to_bytes(self) -> bytes:
        return self.data


def prepare_emit(msg: Message, mode: str | None = None):
    """Size ``msg`` now, emit later: returns an object with ``.size``,
    ``.emit_into(buf, offset) -> end`` and ``.to_bytes()``.

    This is the reserve-then-fill API of the send path: callers reserve
    exactly ``size`` bytes at the destination (block payload slot, frame
    buffer) before any wire byte is produced, then have the plan emit in
    place.  The message must not be mutated in between.
    """
    m = _resolve_mode(mode)
    if m != "interpretive":
        return _encoder_for(msg, m).measure(msg)
    return _PreparedBytes(_serialize_bytes(msg))


def emit_writer(msg: Message, mode: str | None = None):
    """``(size, writer)`` for the block datapath: ``writer(space, addr)``
    emits ``msg``'s wire bytes directly into the registered send region
    via ``space.view`` and returns the payload size — the shape
    ``core.endpoint`` expects from ``Response.writer`` / ``enqueue``."""
    sized = prepare_emit(msg, mode)
    size = sized.size

    def writer(space, addr: int) -> int:
        sized.emit_into(space.view(addr, size), 0)
        return size

    return size, writer


def serialized_size(msg: Message, mode: str | None = None) -> int:
    """Serialized size in bytes without materializing the output.

    Kept exact (rather than ``len(serialize(msg))``) so the datapath
    simulator can size blocks cheaply; nested messages still require a
    recursive walk, matching protobuf's ``ByteSizeLong`` structure.
    """
    m = _resolve_mode(mode)
    if m != "interpretive":
        return _encoder_for(msg, m).serialized_size(msg)
    size = len(msg._unknown)
    for fd, value in msg.ListFields():
        # The wire type occupies the tag's low 3 bits, so the natural and
        # packed tag varints always have the same length.
        tag_size = _tag_cache(fd)[2]
        if fd.is_repeated:
            if fd.is_packed and not getattr(fd, "force_unpacked", False):
                payload = sum(_scalar_size(fd, v) for v in value)
                size += tag_size + varint_size(payload) + payload
            else:
                for v in value:
                    size += tag_size + _element_size(fd, v)
        else:
            size += tag_size + _element_size(fd, value)
    return size


def _scalar_size(fd: FieldDescriptor, value) -> int:
    t = fd.type
    if t.is_varint:
        return varint_size(_scalar_to_varint(fd, value))
    if t in (FieldType.DOUBLE, FieldType.FIXED64, FieldType.SFIXED64):
        return 8
    if t in (FieldType.FLOAT, FieldType.FIXED32, FieldType.SFIXED32):
        return 4
    raise AssertionError(f"not a fixed/varint scalar: {t}")


def _element_size(fd: FieldDescriptor, value) -> int:
    t = fd.type
    if t is FieldType.STRING:
        n = len(value.encode("utf-8"))
        return varint_size(n) + n
    if t is FieldType.BYTES:
        return varint_size(len(value)) + len(value)
    if t is FieldType.MESSAGE:
        n = serialized_size(value)
        return varint_size(n) + n
    return _scalar_size(fd, value)
