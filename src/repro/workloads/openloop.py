"""Deterministic open-loop overload workload (docs/OVERLOAD.md).

Closed-loop drivers (``call_sync`` in a loop) cannot overload anything:
the client only offers a new request after the previous one answered, so
offered load self-limits at capacity — the *coordinated omission* trap.
This harness is open-loop: arrivals follow a seeded Poisson process that
keeps offering work whether or not the datapath keeps up, which is the
only way to exercise admission control, deadline expiry, the
degradation ladder, and the offload circuit breaker.

Everything is simulated time on a :class:`~repro.runtime.overload.
ManualClock` — one *tick* is one event-loop pass plus ``tick_us``
microseconds — so identical seeds give identical shed/degrade/recover
sequences on any machine (the fault campaign fingerprints them) and
latency percentiles are exact, not noisy.

The driven stack is the full offloaded deployment: xRPC clients →
:class:`~repro.xrpc.dpu_frontend.OffloadedXrpcServer` → DPU engine →
RPC over RDMA → host engine, with capacity modeled by the front end's
per-pass forward budget and overload injected as a burst window of
elevated arrivals plus (optionally) a host-worker slowdown that stalls
``host.progress()`` for a stretch of ticks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.runtime.degradation import DegradationManager, standard_ladder
from repro.runtime.overload import (
    LANE_BULK,
    LANE_LATENCY,
    LANE_NAMES,
    CircuitBreaker,
    ManualClock,
    install_clock,
    installed_clock,
    now_us,
)
from repro.xrpc.framing import StatusCode, parse_overload_detail

__all__ = [
    "OpenLoopConfig",
    "OpenLoopResult",
    "percentile",
    "run_open_loop",
]

_OPENLOOP_PROTO = """
syntax = "proto3";
package openloop;
message Work { int64 x = 1; bytes blob = 2; }
message Done { int64 x = 1; }
service Pump { rpc Run (Work) returns (Done); }
"""
_SCHEMA = None


def _openloop_schema():
    global _SCHEMA
    if _SCHEMA is None:
        from repro.proto import compile_schema

        _SCHEMA = compile_schema(_OPENLOOP_PROTO)
    return _SCHEMA


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler — fine for the per-tick rates used here."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return float(sorted_values[max(0, idx)])


@dataclass(frozen=True)
class OpenLoopConfig:
    """One open-loop run.  Rates are mean arrivals per tick; capacity is
    the front end's forward budget per tick, so ``offered_per_tick /
    capacity_per_tick`` is the normalized offered load."""

    seed: int = 0
    ticks: int = 2_000
    tick_us: int = 100
    offered_per_tick: float = 0.5
    capacity_per_tick: int = 1
    #: fraction of arrivals classified LANE_BULK (the rest LANE_LATENCY)
    bulk_fraction: float = 0.7
    #: relative deadline stamped on every call (0 = no deadline word)
    timeout_us: int = 0
    #: burst window [from, until): arrivals at ``burst_per_tick`` instead
    burst_from: int = 0
    burst_until: int = 0
    burst_per_tick: float = 0.0
    #: host-worker slowdown window: host.progress() only runs every
    #: ``slow_stride``-th tick while inside [from, until)
    slow_from: int = 0
    slow_until: int = 0
    slow_stride: int = 4
    #: drain budget after arrivals stop (hang guard)
    drain_ticks: int = 4_000
    payload_bytes: int = 96
    #: False = don't stamp priority lanes on the wire (every request
    #: rides the single FIFO) — the uncontrolled-baseline shape; lane
    #: *attribution* in the result still follows the intended mix
    use_lanes: bool = True


@dataclass
class OpenLoopResult:
    """Everything the campaign fingerprints and the benchmark reports."""

    config: OpenLoopConfig
    offered: int = 0
    completed: dict = field(default_factory=lambda: {LANE_LATENCY: 0, LANE_BULK: 0})
    shed: dict = field(default_factory=lambda: {LANE_LATENCY: 0, LANE_BULK: 0})
    expired: dict = field(default_factory=dict)  # stage -> drops (client view)
    errors: int = 0
    unanswered: int = 0
    ticks: int = 0
    #: per-lane response latencies in µs, ascending (successes only)
    latencies: dict = field(default_factory=lambda: {LANE_LATENCY: [], LANE_BULK: []})
    degradation_events: list = field(default_factory=list)
    breaker_transitions: list = field(default_factory=list)
    admission_stats: dict = field(default_factory=dict)
    server_expired: dict = field(default_factory=dict)  # stage -> server-side drops
    breaker_fallbacks: int = 0
    host_parsed: int = 0

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def goodput_per_tick(self) -> float:
        return self.total_completed / self.ticks if self.ticks else 0.0

    def p99_us(self, lane: int) -> float:
        return percentile(sorted(self.latencies[lane]), 0.99)

    def summary(self) -> dict:
        """JSON-ready digest (the benchmark writes these per load point)."""
        return {
            "offered": self.offered,
            "completed": {LANE_NAMES[k]: v for k, v in self.completed.items()},
            "shed": {LANE_NAMES[k]: v for k, v in self.shed.items()},
            "expired": dict(sorted(self.expired.items())),
            "errors": self.errors,
            "unanswered": self.unanswered,
            "ticks": self.ticks,
            "goodput_per_tick": round(self.goodput_per_tick, 6),
            "shed_rate": round(self.total_shed / self.offered, 6)
            if self.offered
            else 0.0,
            "p50_us": {
                LANE_NAMES[k]: percentile(sorted(v), 0.50)
                for k, v in self.latencies.items()
            },
            "p99_us": {
                LANE_NAMES[k]: percentile(sorted(v), 0.99)
                for k, v in self.latencies.items()
            },
            "degradation_events": len(self.degradation_events),
            "breaker_transitions": list(self.breaker_transitions),
            "breaker_fallbacks": self.breaker_fallbacks,
        }

    def fingerprint_lines(self):
        """Deterministic event material for campaign fingerprints."""
        yield (
            f"offered={self.offered} completed={self.total_completed} "
            f"shed={self.shed[LANE_LATENCY]}/{self.shed[LANE_BULK]} "
            f"errors={self.errors} unanswered={self.unanswered}"
        )
        for stage in sorted(self.expired):
            yield f"expired:{stage}={self.expired[stage]}"
        for ev in self.degradation_events:
            yield f"degrade:{ev.tick}:{ev.action}:{ev.step}"
        for tick, state, reason in self.breaker_transitions:
            yield f"breaker:{tick}:{state}:{reason}"


def run_open_loop(
    config: OpenLoopConfig,
    admission=None,
    use_degradation: bool = False,
    breaker: CircuitBreaker | None = None,
    degradation_kwargs: dict | None = None,
) -> OpenLoopResult:
    """Drive the offloaded stack open-loop under ``config``.

    ``admission`` installs an admission controller on the DPU front end;
    ``use_degradation`` arms the standard ladder (pressure from the
    admission controller) including the offload ``breaker`` as its last
    rung — ``degradation_kwargs`` tunes the manager (watermarks,
    hysteresis counts); a ``breaker`` without degradation is installed
    bare on the front end.  All three default off — the uncontrolled
    baseline the benchmark compares against.
    """
    from repro.core import create_channel
    from repro.offload.engine import DpuEngine, HostEngine
    from repro.xrpc import (
        Network,
        OffloadedXrpcServer,
        XrpcChannel,
        register_offloaded_servicer,
    )

    schema = _openloop_schema()
    Work, Done = schema["openloop.Work"], schema["openloop.Done"]

    class Servicer:
        def Run(self, request, context):
            return Done(x=request.x)

    service = schema.service("openloop.Pump")
    rdma = create_channel()
    host = HostEngine(rdma, schema)
    register_offloaded_servicer(host, service, Servicer())
    dpu = DpuEngine(rdma)
    host.send_bootstrap()
    dpu.receive_bootstrap()
    net = Network()
    front = OffloadedXrpcServer(net, "openloop:dpu", dpu, service)
    front.admission = admission
    channel = XrpcChannel(net, "openloop:dpu", name=f"openloop-{config.seed}")

    manager = None
    if use_degradation:
        # bulk_batch_ticks is deliberately modest here: the widened
        # response batching inflates the front end's in-flight depth
        # signal (responses parked in the host sbuf still count as
        # outstanding), and a wide setting turns that into a feedback
        # loop that holds the ladder up after pressure clears.
        steps = standard_ladder(
            traced=[front, channel],
            endpoints=[rdma.server],
            bulk_batch_ticks=4,
            breaker=breaker,
            breaker_clock=lambda: front._ticks,
        )
        manager = DegradationManager(
            steps,
            pressure_fn=admission.pressure if admission is not None else None,
            **(degradation_kwargs or {}),
        )
    if breaker is not None:
        front.breaker = breaker

    rng = random.Random(config.seed)
    method = f"/{service.full_name}/Run"
    blob = bytes(rng.randrange(256) for _ in range(config.payload_bytes))
    result = OpenLoopResult(config=config)

    clock = ManualClock(1)  # not 0: a 0 deadline word means "none"
    previous = installed_clock()
    install_clock(clock)
    try:
        starts: dict[int, tuple[int, int]] = {}  # call_id -> (lane, start_us)

        def make_done(call_id: int):
            def done(response, status: int) -> None:
                lane, started = starts.pop(call_id)
                if status == StatusCode.OK:
                    result.completed[lane] += 1
                    result.latencies[lane].append(now_us() - started)
                elif status == StatusCode.RESOURCE_EXHAUSTED:
                    result.shed[lane] += 1
                elif status == StatusCode.DEADLINE_EXCEEDED:
                    stage, _ = parse_overload_detail(channel.last_error_detail)
                    stage = stage or "unknown"
                    result.expired[stage] = result.expired.get(stage, 0) + 1
                else:
                    result.errors += 1

            return done

        def offer(n: int) -> None:
            for _ in range(n):
                lane = (
                    LANE_BULK
                    if rng.random() < config.bulk_fraction
                    else LANE_LATENCY
                )
                result.offered += 1
                # The callback needs its own call_id, which call()
                # assigns; close over a cell filled right after (safe:
                # completions only fire from poll()).
                cell: list[int] = []
                call_id = channel.call(
                    method,
                    Work(x=result.offered, blob=blob),
                    Done,
                    lambda response, status, _c=cell: make_done(_c[0])(
                        response, status
                    ),
                    timeout_us=config.timeout_us or None,
                    lane=lane if config.use_lanes else LANE_LATENCY,
                )
                cell.append(call_id)
                starts[call_id] = (lane, now_us())

        def step(tick: int, slow_ok: bool) -> None:
            front.progress(config.capacity_per_tick)
            if slow_ok:
                host.progress()
            if manager is not None:
                manager.on_tick(tick)
            channel.poll()
            clock.advance(config.tick_us)
            result.ticks += 1

        for tick in range(config.ticks):
            rate = config.offered_per_tick
            if config.burst_from <= tick < config.burst_until:
                rate = config.burst_per_tick
            offer(_poisson(rng, rate))
            slowed = (
                config.slow_from <= tick < config.slow_until
                and tick % config.slow_stride != 0
            )
            step(tick, slow_ok=not slowed)

        drained = 0
        while starts and drained < config.drain_ticks:
            step(config.ticks + drained, slow_ok=True)
            drained += 1
        result.unanswered = len(starts)

        if manager is not None:
            manager.recover_all(result.ticks)
            # A reverted breaker rung leaves the breaker half-open; let
            # probe traffic close it so the transition log ends "closed".
            if breaker is not None and breaker.state != CircuitBreaker.CLOSED:
                probes = 0
                while (
                    breaker.state != CircuitBreaker.CLOSED and probes < 64
                ):
                    offer(1)
                    for _ in range(32):
                        step(result.ticks, slow_ok=True)
                        if not starts:
                            break
                    probes += 1
            result.degradation_events = list(manager.events)
    finally:
        install_clock(previous)

    if admission is not None:
        result.admission_stats = admission.stats()
    if breaker is not None:
        result.breaker_transitions = list(breaker.transitions)
    result.server_expired = dict(front.deadline_expired)
    for stage, count in rdma.server.deadline_expired.items():
        result.server_expired[stage] = count
    result.breaker_fallbacks = front.breaker_fallbacks
    result.host_parsed = host.host_deserialized
    return result
