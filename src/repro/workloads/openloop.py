"""Deterministic open-loop overload workload (docs/OVERLOAD.md).

Closed-loop drivers (``call_sync`` in a loop) cannot overload anything:
the client only offers a new request after the previous one answered, so
offered load self-limits at capacity — the *coordinated omission* trap.
This harness is open-loop: arrivals follow a seeded Poisson process that
keeps offering work whether or not the datapath keeps up, which is the
only way to exercise admission control, deadline expiry, the
degradation ladder, and the offload circuit breaker.

Everything is simulated time on a :class:`~repro.runtime.overload.
ManualClock` — one *tick* is one event-loop pass plus ``tick_us``
microseconds — so identical seeds give identical shed/degrade/recover
sequences on any machine (the fault campaign fingerprints them) and
latency percentiles are exact, not noisy.

The driven stack is the full offloaded deployment: xRPC clients →
:class:`~repro.xrpc.dpu_frontend.OffloadedXrpcServer` → DPU engine →
RPC over RDMA → host engine, with capacity modeled by the front end's
per-pass forward budget and overload injected as a burst window of
elevated arrivals plus (optionally) a host-worker slowdown that stalls
``host.progress()`` for a stretch of ticks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.runtime.degradation import DegradationManager, standard_ladder
from repro.runtime.overload import (
    LANE_BULK,
    LANE_LATENCY,
    LANE_NAMES,
    CircuitBreaker,
    ManualClock,
    install_clock,
    installed_clock,
    now_us,
)
from repro.xrpc.framing import StatusCode, parse_overload_detail

__all__ = [
    "OpenLoopConfig",
    "OpenLoopResult",
    "TuneConfig",
    "TuneRunResult",
    "default_knobs",
    "percentile",
    "run_autotuned",
    "run_open_loop",
]

_OPENLOOP_PROTO = """
syntax = "proto3";
package openloop;
message Work { int64 x = 1; bytes blob = 2; }
message Done { int64 x = 1; }
service Pump { rpc Run (Work) returns (Done); }
"""
_SCHEMA = None


def _openloop_schema():
    global _SCHEMA
    if _SCHEMA is None:
        from repro.proto import compile_schema

        _SCHEMA = compile_schema(_OPENLOOP_PROTO)
    return _SCHEMA


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler — fine for the per-tick rates used here."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return float(sorted_values[max(0, idx)])


@dataclass(frozen=True)
class OpenLoopConfig:
    """One open-loop run.  Rates are mean arrivals per tick; capacity is
    the front end's forward budget per tick, so ``offered_per_tick /
    capacity_per_tick`` is the normalized offered load."""

    seed: int = 0
    ticks: int = 2_000
    tick_us: int = 100
    offered_per_tick: float = 0.5
    capacity_per_tick: int = 1
    #: fraction of arrivals classified LANE_BULK (the rest LANE_LATENCY)
    bulk_fraction: float = 0.7
    #: relative deadline stamped on every call (0 = no deadline word)
    timeout_us: int = 0
    #: burst window [from, until): arrivals at ``burst_per_tick`` instead
    burst_from: int = 0
    burst_until: int = 0
    burst_per_tick: float = 0.0
    #: host-worker slowdown window: host.progress() only runs every
    #: ``slow_stride``-th tick while inside [from, until)
    slow_from: int = 0
    slow_until: int = 0
    slow_stride: int = 4
    #: drain budget after arrivals stop (hang guard)
    drain_ticks: int = 4_000
    payload_bytes: int = 96
    #: False = don't stamp priority lanes on the wire (every request
    #: rides the single FIFO) — the uncontrolled-baseline shape; lane
    #: *attribution* in the result still follows the intended mix
    use_lanes: bool = True


@dataclass
class OpenLoopResult:
    """Everything the campaign fingerprints and the benchmark reports."""

    config: OpenLoopConfig
    offered: int = 0
    completed: dict = field(default_factory=lambda: {LANE_LATENCY: 0, LANE_BULK: 0})
    shed: dict = field(default_factory=lambda: {LANE_LATENCY: 0, LANE_BULK: 0})
    expired: dict = field(default_factory=dict)  # stage -> drops (client view)
    errors: int = 0
    unanswered: int = 0
    ticks: int = 0
    #: per-lane response latencies in µs, ascending (successes only)
    latencies: dict = field(default_factory=lambda: {LANE_LATENCY: [], LANE_BULK: []})
    degradation_events: list = field(default_factory=list)
    breaker_transitions: list = field(default_factory=list)
    admission_stats: dict = field(default_factory=dict)
    server_expired: dict = field(default_factory=dict)  # stage -> server-side drops
    breaker_fallbacks: int = 0
    host_parsed: int = 0

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def goodput_per_tick(self) -> float:
        return self.total_completed / self.ticks if self.ticks else 0.0

    def p99_us(self, lane: int) -> float:
        return percentile(sorted(self.latencies[lane]), 0.99)

    def summary(self) -> dict:
        """JSON-ready digest (the benchmark writes these per load point)."""
        return {
            "offered": self.offered,
            "completed": {LANE_NAMES[k]: v for k, v in self.completed.items()},
            "shed": {LANE_NAMES[k]: v for k, v in self.shed.items()},
            "expired": dict(sorted(self.expired.items())),
            "errors": self.errors,
            "unanswered": self.unanswered,
            "ticks": self.ticks,
            "goodput_per_tick": round(self.goodput_per_tick, 6),
            "shed_rate": round(self.total_shed / self.offered, 6)
            if self.offered
            else 0.0,
            "p50_us": {
                LANE_NAMES[k]: percentile(sorted(v), 0.50)
                for k, v in self.latencies.items()
            },
            "p99_us": {
                LANE_NAMES[k]: percentile(sorted(v), 0.99)
                for k, v in self.latencies.items()
            },
            "degradation_events": len(self.degradation_events),
            "breaker_transitions": list(self.breaker_transitions),
            "breaker_fallbacks": self.breaker_fallbacks,
        }

    def fingerprint_lines(self):
        """Deterministic event material for campaign fingerprints."""
        yield (
            f"offered={self.offered} completed={self.total_completed} "
            f"shed={self.shed[LANE_LATENCY]}/{self.shed[LANE_BULK]} "
            f"errors={self.errors} unanswered={self.unanswered}"
        )
        for stage in sorted(self.expired):
            yield f"expired:{stage}={self.expired[stage]}"
        for ev in self.degradation_events:
            yield f"degrade:{ev.tick}:{ev.action}:{ev.step}"
        for tick, state, reason in self.breaker_transitions:
            yield f"breaker:{tick}:{state}:{reason}"


class _Stack:
    """The built offloaded deployment one open-loop run drives."""

    __slots__ = ("schema", "Work", "Done", "service", "rdma", "host",
                 "dpu", "net", "front", "channel", "method")


def _build_stack(config: OpenLoopConfig, admission=None) -> _Stack:
    """Construct the full offloaded stack (xRPC client → DPU front end →
    RPC over RDMA → host engine), bootstrap it, and return the pieces.
    Shared by :func:`run_open_loop` and :func:`run_autotuned` so the two
    harnesses measure the identical datapath."""
    from repro.core import create_channel
    from repro.offload.engine import DpuEngine, HostEngine
    from repro.xrpc import (
        Network,
        OffloadedXrpcServer,
        XrpcChannel,
        register_offloaded_servicer,
    )

    stack = _Stack()
    stack.schema = schema = _openloop_schema()
    stack.Work, stack.Done = schema["openloop.Work"], schema["openloop.Done"]
    Done = stack.Done

    class Servicer:
        def Run(self, request, context):
            return Done(x=request.x)

    stack.service = service = schema.service("openloop.Pump")
    stack.rdma = rdma = create_channel()
    stack.host = host = HostEngine(rdma, schema)
    register_offloaded_servicer(host, service, Servicer())
    stack.dpu = dpu = DpuEngine(rdma)
    host.send_bootstrap()
    dpu.receive_bootstrap()
    stack.net = net = Network()
    stack.front = front = OffloadedXrpcServer(net, "openloop:dpu", dpu, service)
    front.admission = admission
    stack.channel = XrpcChannel(net, "openloop:dpu", name=f"openloop-{config.seed}")
    stack.method = f"/{service.full_name}/Run"
    return stack


def run_open_loop(
    config: OpenLoopConfig,
    admission=None,
    use_degradation: bool = False,
    breaker: CircuitBreaker | None = None,
    degradation_kwargs: dict | None = None,
) -> OpenLoopResult:
    """Drive the offloaded stack open-loop under ``config``.

    ``admission`` installs an admission controller on the DPU front end;
    ``use_degradation`` arms the standard ladder (pressure from the
    admission controller) including the offload ``breaker`` as its last
    rung — ``degradation_kwargs`` tunes the manager (watermarks,
    hysteresis counts); a ``breaker`` without degradation is installed
    bare on the front end.  All three default off — the uncontrolled
    baseline the benchmark compares against.
    """
    stack = _build_stack(config, admission)
    rdma, host, front, channel = stack.rdma, stack.host, stack.front, stack.channel
    Work, Done = stack.Work, stack.Done

    manager = None
    if use_degradation:
        # bulk_batch_ticks is deliberately modest here: the widened
        # response batching inflates the front end's in-flight depth
        # signal (responses parked in the host sbuf still count as
        # outstanding), and a wide setting turns that into a feedback
        # loop that holds the ladder up after pressure clears.
        steps = standard_ladder(
            traced=[front, channel],
            endpoints=[rdma.server],
            bulk_batch_ticks=4,
            breaker=breaker,
            breaker_clock=lambda: front._ticks,
        )
        manager = DegradationManager(
            steps,
            pressure_fn=admission.pressure if admission is not None else None,
            **(degradation_kwargs or {}),
        )
    if breaker is not None:
        front.breaker = breaker

    rng = random.Random(config.seed)
    method = stack.method
    blob = bytes(rng.randrange(256) for _ in range(config.payload_bytes))
    result = OpenLoopResult(config=config)

    clock = ManualClock(1)  # not 0: a 0 deadline word means "none"
    previous = installed_clock()
    install_clock(clock)
    try:
        starts: dict[int, tuple[int, int]] = {}  # call_id -> (lane, start_us)

        def make_done(call_id: int):
            def done(response, status: int) -> None:
                lane, started = starts.pop(call_id)
                if status == StatusCode.OK:
                    result.completed[lane] += 1
                    result.latencies[lane].append(now_us() - started)
                elif status == StatusCode.RESOURCE_EXHAUSTED:
                    result.shed[lane] += 1
                elif status == StatusCode.DEADLINE_EXCEEDED:
                    stage, _ = parse_overload_detail(channel.last_error_detail)
                    stage = stage or "unknown"
                    result.expired[stage] = result.expired.get(stage, 0) + 1
                else:
                    result.errors += 1

            return done

        def offer(n: int) -> None:
            for _ in range(n):
                lane = (
                    LANE_BULK
                    if rng.random() < config.bulk_fraction
                    else LANE_LATENCY
                )
                result.offered += 1
                # The callback needs its own call_id, which call()
                # assigns; close over a cell filled right after (safe:
                # completions only fire from poll()).
                cell: list[int] = []
                call_id = channel.call(
                    method,
                    Work(x=result.offered, blob=blob),
                    Done,
                    lambda response, status, _c=cell: make_done(_c[0])(
                        response, status
                    ),
                    timeout_us=config.timeout_us or None,
                    lane=lane if config.use_lanes else LANE_LATENCY,
                )
                cell.append(call_id)
                starts[call_id] = (lane, now_us())

        def step(tick: int, slow_ok: bool) -> None:
            front.progress(config.capacity_per_tick)
            if slow_ok:
                host.progress()
            if manager is not None:
                manager.on_tick(tick)
            channel.poll()
            clock.advance(config.tick_us)
            result.ticks += 1

        for tick in range(config.ticks):
            rate = config.offered_per_tick
            if config.burst_from <= tick < config.burst_until:
                rate = config.burst_per_tick
            offer(_poisson(rng, rate))
            slowed = (
                config.slow_from <= tick < config.slow_until
                and tick % config.slow_stride != 0
            )
            step(tick, slow_ok=not slowed)

        drained = 0
        while starts and drained < config.drain_ticks:
            step(config.ticks + drained, slow_ok=True)
            drained += 1
        result.unanswered = len(starts)

        if manager is not None:
            manager.recover_all(result.ticks)
            # A reverted breaker rung leaves the breaker half-open; let
            # probe traffic close it so the transition log ends "closed".
            if breaker is not None and breaker.state != CircuitBreaker.CLOSED:
                probes = 0
                while (
                    breaker.state != CircuitBreaker.CLOSED and probes < 64
                ):
                    offer(1)
                    for _ in range(32):
                        step(result.ticks, slow_ok=True)
                        if not starts:
                            break
                    probes += 1
            result.degradation_events = list(manager.events)
    finally:
        install_clock(previous)

    if admission is not None:
        result.admission_stats = admission.stats()
    if breaker is not None:
        result.breaker_transitions = list(breaker.transitions)
    result.server_expired = dict(front.deadline_expired)
    for stage, count in rdma.server.deadline_expired.items():
        result.server_expired[stage] = count
    result.breaker_fallbacks = front.breaker_fallbacks
    result.host_parsed = host.host_deserialized
    return result

# ---------------------------------------------------------------------------
# The closed loop: the open-loop harness under the autotuner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TuneConfig:
    """One autotuned run (docs/AUTOTUNE.md#harness).

    The telemetry window is the controller's decision period; SLO
    targets parameterize both the tracker and the lane-aware score the
    hill climber maximizes.  ``enabled=False`` runs the identical
    harness — same telemetry, same scoring — with the controller
    observing but never stepping, which is how the benchmark measures
    static configs under exactly the tuned run's conditions."""

    window_ticks: int = 64
    warmup_windows: int = 2
    hold_windows: int = 2
    cooldown: int = 4
    tolerance: float = 0.02
    #: latency-lane p99 target in µs (SLO + score penalty reference)
    slo_p99_us: float = 2_500.0
    #: goodput floor in completions/tick; 0 derives 80% of the
    #: sustainable rate min(offered, capacity)
    slo_goodput_floor: float = 0.0
    slo_miss_rate: float = 0.05
    #: error budget: fraction of windows allowed to violate each target
    slo_budget: float = 0.25
    #: score = completion ratio − weight · max(0, p99 − target)/target.
    #: The ratio (window completions / window arrivals, from a hub
    #: source) is the goodput term with the Poisson arrival noise
    #: cancelled: both sides of a probe comparison saw their own
    #: arrivals, so falling behind shows as ratio < 1 while "keeping
    #: up" scores 1.0 regardless of how many arrivals the window drew.
    latency_weight: float = 0.5
    #: continuous tail pressure: a − weight · p99/target term even
    #: *below* the SLO target, so the climb does not stall at "good
    #: enough" latency once the ratio saturates at 1.0 (small enough
    #: that losing real throughput always dominates it)
    tail_weight: float = 0.3
    #: rollback-guard burn floor.  One noisy violating window inside
    #: the tracker's 3-window short horizon burns (1/3)/budget = 1.33x
    #: with the defaults; a violation sustained across a whole probe
    #: burns >= 2.67x.  2.0 separates the two, so Poisson dips cannot
    #: revert a step the score accepted (mirrors the tracker's own
    #: both-horizons paging discipline).
    burn_floor: float = 2.0
    enabled: bool = True
    #: knob name → starting value (the deliberately bad config); knobs
    #: not named start at their ladder's default index
    initial: tuple = ()
    #: which knobs the controller may move (see :func:`default_knobs`)
    knob_names: tuple = ("flush_ticks", "forward_budget", "host_passes",
                        "credits")


@dataclass
class TuneRunResult:
    """Everything one autotuned run produced: the traffic accounting of
    the underlying open-loop run, plus the control loop's artifacts."""

    config: OpenLoopConfig
    tune: TuneConfig
    result: OpenLoopResult
    initial_config: dict = field(default_factory=dict)
    final_config: dict = field(default_factory=dict)
    decisions: list = field(default_factory=list)
    slo_events: list = field(default_factory=list)
    windows: int = 0
    tuner_fingerprint: str = ""
    #: sealed TelemetrySnapshots, oldest first (bounded by the hub)
    snapshots: list = field(default_factory=list)
    hub: object = None
    slo: object = None
    tuner: object = None

    def decision_log(self) -> list[str]:
        return [d.render() for d in self.decisions]

    # -- steady-state metrics (what the convergence gate compares) -------

    def _steady(self, k: int):
        snaps = self.snapshots[-k:] if k else self.snapshots
        return [s for s in snaps if s.ticks]

    def steady_goodput(self, k: int = 8) -> float:
        """Mean completions/tick over the last ``k`` sealed windows —
        the post-convergence throughput, excluding the warmup the tuner
        spent climbing out of the bad initial config."""
        snaps = self._steady(k)
        if not snaps:
            return 0.0
        return sum(s.goodput_per_tick() for s in snaps) / len(snaps)

    def steady_p99_us(self, lane: int, k: int = 8) -> float:
        """Mean per-window p99 (µs) for ``lane`` over the last ``k``
        windows (windows with no lane traffic are skipped)."""
        values = [
            s.lane_p99_us(lane) for s in self._steady(k)
            if s.lane_latency_us.get(lane)
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def summary(self) -> dict:
        out = self.result.summary()
        out.update({
            "windows": self.windows,
            "initial_config": dict(self.initial_config),
            "final_config": dict(self.final_config),
            "decisions": len(self.decisions),
            "steps": sum(1 for d in self.decisions if d.action == "step"),
            "rollbacks": sum(1 for d in self.decisions if d.action == "rollback"),
            "steady_goodput_per_tick": round(self.steady_goodput(), 6),
            "steady_p99_us": {
                LANE_NAMES[lane]: round(self.steady_p99_us(lane), 1)
                for lane in (LANE_LATENCY, LANE_BULK)
            },
            "tuner_fingerprint": self.tuner_fingerprint,
        })
        return out

    def fingerprint_lines(self):
        """Traffic lines + every controller decision + every SLO event:
        the determinism contract the CI smoke job re-runs and compares."""
        yield from self.result.fingerprint_lines()
        for d in self.decisions:
            yield d.fingerprint_line()
        for line in (self.slo.fingerprint_lines() if self.slo else ()):
            yield line


def default_knobs(stack: _Stack, cells: dict, initial: dict | None = None):
    """The knob table over a built stack (docs/AUTOTUNE.md#knobs).

    Every knob applies *live* — mid-traffic, no reconnect:

    * ``flush_ticks`` — response batching on both RDMA endpoints
      (0 = eager, else Nagle with that deadline);
    * ``forward_budget`` — requests the DPU front end forwards per pass
      (the paper's DPU poller width, §III-C);
    * ``host_passes`` — host engine passes per tick (worker-pool width);
    * ``credits`` — live resize of both endpoints' credit ceilings;
    * ``decode_mode`` / ``encode_mode`` — codec tier on the DPU / host.

    ``cells`` carries the budget knobs to the drive loop; ``initial``
    overrides starting values (the deliberately bad config)."""
    from repro.runtime.autotune import Knob
    from repro.runtime.flush import EagerFlush, NagleFlush

    initial = dict(initial or {})
    rdma, dpu, host = stack.rdma, stack.dpu, stack.host

    def apply_flush(v):
        for ep in (rdma.client, rdma.server):
            ep.flush_policy = EagerFlush() if v == 0 else NagleFlush(deadline_ticks=v)

    def apply_credits(v):
        for ep in (rdma.client, rdma.server):
            ep.credits.resize(v)

    def apply_decode(v):
        dpu.deserializer.mode = v

    def apply_encode(v):
        host.encode_mode = v

    table = {
        "flush_ticks": ([0, 1, 2, 4, 8, 16], apply_flush, 0),
        "forward_budget": ([1, 2, 3, 4, 6, 8],
                           lambda v: cells.__setitem__("forward_budget", v), 3),
        "host_passes": ([1, 2, 3, 4],
                        lambda v: cells.__setitem__("host_passes", v), 0),
        "credits": ([2, 4, 8, 16, 32], apply_credits, 2),
        "decode_mode": (["interpretive", "plan"], apply_decode, 1),
        "encode_mode": (["interpretive", "plan"], apply_encode, 1),
    }
    knobs = []
    for name, (values, apply, default_index) in table.items():
        index = default_index
        if name in initial:
            index = values.index(initial[name])
        knob = Knob(name, values, apply, initial_index=index)
        knobs.append(knob)
    return knobs


def run_autotuned(
    config: OpenLoopConfig,
    tune: TuneConfig | None = None,
    admission=None,
    observer=None,
) -> TuneRunResult:
    """Drive the offloaded stack open-loop *with the loop closed*: full
    tracing streams into a :class:`~repro.obs.telemetry.TelemetryHub`,
    an SLO tracker judges every window, and the autotuner steps one knob
    per window (``tune.enabled=False`` observes without steering — the
    static-config twin the benchmark compares against).

    ``observer(hub, slo, tuner, snapshot)`` fires after each sealed
    window's control pass — the `repro top --live` refresh hook.

    Deterministic end to end: ManualClock time, seeded arrivals, and a
    trace clock slaved to the simulated clock, so the same seed yields
    the same decision log and the same fingerprint on any machine."""
    from repro.obs.slo import (
        KIND_GOODPUT,
        KIND_LANE_P99,
        KIND_MISS_RATE,
        AnomalyDetector,
        SloSpec,
        SloTracker,
    )
    from repro.obs.telemetry import TelemetryHub
    from repro.obs.trace import Stage, TraceCollector, attach_channel
    from repro.runtime.autotune import AutoTuner, KnobSet

    tune = tune or TuneConfig()
    stack = _build_stack(config, admission)
    rdma, host, front, channel = stack.rdma, stack.host, stack.front, stack.channel
    Work, Done = stack.Work, stack.Done

    rng = random.Random(config.seed)
    method = stack.method
    blob = bytes(rng.randrange(256) for _ in range(config.payload_bytes))
    result = OpenLoopResult(config=config)

    clock = ManualClock(1)
    previous = installed_clock()
    install_clock(clock)
    try:
        # -- observability wiring (attach after bootstrap, before the
        #    first request, so derived serials align) --------------------
        collector = TraceCollector(clock=lambda: now_us() * 1e-6)
        attach_channel(collector, rdma, stream="rdma",
                       client_component="dpu.rpc", server_component="host.rpc")
        front.trace = collector.recorder("dpu.frontend")
        hub = TelemetryHub(collector, window_ticks=tune.window_ticks)
        # Arrival counter as a hub source: the score normalizes each
        # window's completions by its own offered arrivals.
        hub.add_source("workload", lambda: {"offered": result.offered})

        goodput_floor = tune.slo_goodput_floor or 0.8 * min(
            config.offered_per_tick, float(config.capacity_per_tick)
        )
        slo = SloTracker(
            [
                SloSpec("latency_p99", KIND_LANE_P99, tune.slo_p99_us,
                        lane=LANE_LATENCY, budget=tune.slo_budget),
                SloSpec("goodput_floor", KIND_GOODPUT, goodput_floor,
                        budget=tune.slo_budget),
                SloSpec("deadline_miss", KIND_MISS_RATE, tune.slo_miss_rate,
                        budget=tune.slo_budget),
            ],
            recorder=collector.recorder("slo"),
            anomaly=AnomalyDetector(),
        )
        hub.add_listener(slo.observe)

        cells = {"forward_budget": config.capacity_per_tick, "host_passes": 1}
        knobs = KnobSet([
            k for k in default_knobs(stack, cells, dict(tune.initial))
            if k.name in tune.knob_names
        ])
        for knob in knobs:
            knob.apply(knob.value)  # realize the starting config

        def score(snapshot) -> float:
            # Lane-aware: the completion ratio pays for latency-lane
            # tail excess, so batching that helps bulk at the fast
            # lane's expense loses.  Ratio, not raw goodput: dividing by
            # the window's own arrivals cancels the Poisson noise that
            # would otherwise drown the latency gradient.
            offered = snapshot.source_deltas.get(
                "workload", {}).get("offered", 0)
            ratio = snapshot.completed / offered if offered else 1.0
            p99 = snapshot.lane_p99_us(LANE_LATENCY)
            excess = max(0.0, p99 - tune.slo_p99_us) / tune.slo_p99_us
            tail = p99 / tune.slo_p99_us
            return (ratio
                    - tune.latency_weight * excess
                    - tune.tail_weight * tail)

        tuner = AutoTuner(
            knobs, score, tolerance=tune.tolerance,
            hold_windows=tune.hold_windows, cooldown=tune.cooldown,
            warmup_windows=tune.warmup_windows, burn_floor=tune.burn_floor,
        )
        tune_recorder = collector.recorder("tuner")
        driving = {"on": tune.enabled}

        def on_window(snapshot) -> None:
            if not driving["on"]:
                return
            decision = tuner.observe(snapshot, burn=slo.burn())
            if decision is not None:
                tune_recorder.instant(
                    Stage.TUNE, action=decision.action, knob=decision.knob,
                    old=decision.old_value, new=decision.new_value,
                    score=round(decision.score, 4),
                    burn=round(decision.burn, 3), window=decision.window,
                )

        hub.add_listener(on_window)
        if observer is not None:
            hub.add_listener(lambda snap: observer(hub, slo, tuner, snap))
        initial_config = knobs.config()

        # -- the drive loop (same shape as run_open_loop) ----------------
        starts: dict[int, tuple[int, int]] = {}

        def make_done(call_id: int):
            def done(response, status: int) -> None:
                lane, started = starts.pop(call_id)
                if status == StatusCode.OK:
                    result.completed[lane] += 1
                    result.latencies[lane].append(now_us() - started)
                elif status == StatusCode.RESOURCE_EXHAUSTED:
                    result.shed[lane] += 1
                elif status == StatusCode.DEADLINE_EXCEEDED:
                    stage, _ = parse_overload_detail(channel.last_error_detail)
                    stage = stage or "unknown"
                    result.expired[stage] = result.expired.get(stage, 0) + 1
                else:
                    result.errors += 1

            return done

        def offer(n: int) -> None:
            for _ in range(n):
                lane = (
                    LANE_BULK
                    if rng.random() < config.bulk_fraction
                    else LANE_LATENCY
                )
                result.offered += 1
                cell: list[int] = []
                call_id = channel.call(
                    method,
                    Work(x=result.offered, blob=blob),
                    Done,
                    lambda response, status, _c=cell: make_done(_c[0])(
                        response, status
                    ),
                    timeout_us=config.timeout_us or None,
                    lane=lane if config.use_lanes else LANE_LATENCY,
                )
                cell.append(call_id)
                starts[call_id] = (lane, now_us())

        def step(tick: int) -> None:
            front.progress(cells["forward_budget"])
            for _ in range(cells["host_passes"]):
                host.progress()
            channel.poll()
            hub.on_tick(config.tick_us)
            clock.advance(config.tick_us)
            result.ticks += 1

        for tick in range(config.ticks):
            rate = config.offered_per_tick
            if config.burst_from <= tick < config.burst_until:
                rate = config.burst_per_tick
            offer(_poisson(rng, rate))
            step(tick)

        driving["on"] = False  # arrivals stopped: freeze the controller
        drained = 0
        while starts and drained < config.drain_ticks:
            step(config.ticks + drained)
            drained += 1
        result.unanswered = len(starts)
    finally:
        install_clock(previous)

    if admission is not None:
        result.admission_stats = admission.stats()
    result.server_expired = dict(front.deadline_expired)
    for stage, count in rdma.server.deadline_expired.items():
        result.server_expired[stage] = count
    result.breaker_fallbacks = front.breaker_fallbacks
    result.host_parsed = host.host_deserialized
    return TuneRunResult(
        config=config,
        tune=tune,
        result=result,
        initial_config=initial_config,
        final_config=knobs.config(),
        decisions=list(tuner.decisions),
        slo_events=list(slo.events),
        windows=hub.windows_closed,
        tuner_fingerprint=tuner.fingerprint(),
        snapshots=list(hub.snapshots),
        hub=hub,
        slo=slo,
        tuner=tuner,
    )
