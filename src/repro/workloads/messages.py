"""The paper's synthetic benchmark messages (§VI-C.1).

Three messages, each stressing a different axis of the datapath:

* **Small** — a 15-byte message of assorted fields; the common RPC case,
  bounded by per-message datapath efficiency.
* **x512 Ints** — a packed ``repeated uint32`` array; varint decoding is
  the dominant cost (high compute).  Element values follow the paper's
  non-uniform distribution: smaller integers are more likely, so encoded
  lengths span 1–5 bytes, data accesses are unaligned, and different
  instruction paths execute.  (The paper's §VI-C.4 also reports an
  "x128 int" variant; the element count is a parameter here.)
* **x8000 Chars** — an 8 000-character string; a single big copy plus
  UTF-8 validation (high copy cost), serialized size 8 003 bytes.

All generators use a Mersenne-Twister generator with a constant seed for
reproducibility, like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.proto import CompiledSchema, Message, compile_schema, serialize

__all__ = [
    "WORKLOAD_PROTO",
    "WorkloadSpec",
    "workload_schema",
    "WorkloadFactory",
    "SMALL",
    "X512_INTS",
    "X128_INTS",
    "X8000_CHARS",
    "STANDARD_WORKLOADS",
]

WORKLOAD_PROTO = """
syntax = "proto3";
package bench;

// "Small": 15 bytes serialized, 40-byte C++ object.
message Small {
  uint32 id = 1;       // 4-byte varint
  uint32 flags = 2;    // 1-byte varint
  uint64 payload = 3;  // 5-byte varint
  bool ok = 4;
}

// "xN Ints": packed varint array, compute-bound deserialization.
message IntArray {
  repeated uint32 values = 1;
}

// "xN Chars": one large string, copy-bound deserialization.
message CharArray {
  string data = 1;
}

// Response used by datapath benchmarks (the business logic is empty and
// answers with an empty message, §VI-C).
message Empty {}
"""

_SEED = 0x5EED  # constant, like the paper's reproducible MT seed


@dataclass(frozen=True)
class WorkloadSpec:
    """Names one benchmark message shape."""

    name: str
    type_name: str
    element_count: int  # ints or chars; 0 for Small

    def describe(self) -> str:
        return f"{self.name} ({self.type_name}, n={self.element_count})"


SMALL = WorkloadSpec("Small", "bench.Small", 0)
X512_INTS = WorkloadSpec("x512 Ints", "bench.IntArray", 512)
X128_INTS = WorkloadSpec("x128 Ints", "bench.IntArray", 128)
X8000_CHARS = WorkloadSpec("x8000 Chars", "bench.CharArray", 8000)

#: The Fig. 8 trio.
STANDARD_WORKLOADS = [SMALL, X512_INTS, X8000_CHARS]


def workload_schema() -> CompiledSchema:
    return compile_schema(WORKLOAD_PROTO)


# Probability of a uint32 element needing 1..5 varint bytes.  Skewed small
# (the paper: "integers are more likely to be smaller"); mean ≈ 1.94
# encoded bytes/element, reproducing the reported 2.06× varint compression
# of the int array within a few percent.
_VARINT_LEN_WEIGHTS = np.array([0.45, 0.30, 0.15, 0.07, 0.03])
_VARINT_LEN_BOUNDS = [(0, 7), (7, 14), (14, 21), (21, 28), (28, 32)]


class WorkloadFactory:
    """Builds reproducible message instances and their wire bytes."""

    def __init__(self, seed: int = _SEED, schema: CompiledSchema | None = None) -> None:
        self.schema = schema or workload_schema()
        self.rng = np.random.Generator(np.random.MT19937(seed))

    # -- element generators -----------------------------------------------------

    def int_elements(self, count: int) -> np.ndarray:
        """Random uint32s with the skewed varint-length distribution."""
        lengths = self.rng.choice(5, size=count, p=_VARINT_LEN_WEIGHTS)
        out = np.empty(count, dtype=np.uint64)
        for i, li in enumerate(lengths):
            lo_bits, hi_bits = _VARINT_LEN_BOUNDS[li]
            lo = 1 << lo_bits if lo_bits else 1
            hi = (1 << hi_bits) - 1
            out[i] = self.rng.integers(lo, max(lo + 1, hi), dtype=np.uint64)
        return out.astype(np.uint32)

    def char_data(self, count: int) -> str:
        """Random single-byte (ASCII) characters, uncompressed on the
        wire: one byte per element."""
        codes = self.rng.integers(0x20, 0x7F, size=count, dtype=np.uint8)
        return codes.tobytes().decode("ascii")

    # -- message builders ----------------------------------------------------------

    def small(self) -> Message:
        cls = self.schema["bench.Small"]
        return cls(
            id=int(self.rng.integers(1 << 21, 1 << 27)),  # 4-byte varint
            flags=int(self.rng.integers(1, 127)),  # 1-byte varint
            payload=int(self.rng.integers(1 << 28, 1 << 34)),  # 5-byte varint
            ok=True,
        )

    def int_array(self, count: int = 512) -> Message:
        cls = self.schema["bench.IntArray"]
        return cls(values=[int(v) for v in self.int_elements(count)])

    def char_array(self, count: int = 8000) -> Message:
        cls = self.schema["bench.CharArray"]
        return cls(data=self.char_data(count))

    def build(self, spec: WorkloadSpec) -> Message:
        if spec.type_name == "bench.Small":
            return self.small()
        if spec.type_name == "bench.IntArray":
            return self.int_array(spec.element_count)
        if spec.type_name == "bench.CharArray":
            return self.char_array(spec.element_count)
        raise ValueError(f"unknown workload {spec}")

    def build_wire(self, spec: WorkloadSpec) -> tuple[Message, bytes]:
        msg = self.build(spec)
        return msg, serialize(msg)
