"""Production-like RPC traffic mixes.

The paper motivates its batching design with fleet measurements: "nearly
90% of analyzed messages are 512 bytes or less" (§IV, citing the
Accelerometer study and the protobuf-accelerator paper), and its §VI-C
discussion contrasts its synthetic trio with Google's benchmark suite of
"huge messages with deeply nested structures".  This module provides
both:

* :class:`TraceMix` — a weighted mixture of message shapes whose
  serialized-size distribution matches the cited fleet shape (default:
  ~90% ≤ 512 B, a tail of KB-range arrays and blobs);
* :func:`deeply_nested` — the Google-suite-style stress message
  (configurable depth/fan-out), exercising the deserializer's recursion
  and the per-message ADT walk.

Profiles derived from a mix feed the datapath simulator through
:meth:`repro.sim.WorkloadProfile.blend`, modeling steady-state traffic
that interleaves small and large messages in the same blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.proto import CompiledSchema, Message, compile_schema, serialize

from .messages import WorkloadFactory, WorkloadSpec, workload_schema

__all__ = ["TraceComponent", "TraceMix", "FLEET_MIX", "NESTED_PROTO", "deeply_nested"]


@dataclass(frozen=True)
class TraceComponent:
    """One message shape in a mix."""

    spec: WorkloadSpec
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class TraceMix:
    """A weighted mixture of message shapes."""

    name: str
    components: tuple[TraceComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("mix needs at least one component")

    @property
    def weights(self) -> np.ndarray:
        w = np.array([c.weight for c in self.components], dtype=float)
        return w / w.sum()

    def sample(self, factory: WorkloadFactory, count: int) -> list[Message]:
        """Draw ``count`` messages i.i.d. from the mix (factory's RNG)."""
        idx = factory.rng.choice(len(self.components), size=count, p=self.weights)
        return [factory.build(self.components[i].spec) for i in idx]

    def small_fraction(self, factory: WorkloadFactory, cutoff: int = 512,
                       sample_size: int = 400) -> float:
        """Fraction of sampled messages serializing to <= ``cutoff``
        bytes (the fleet statistic the mix is calibrated against)."""
        msgs = self.sample(factory, sample_size)
        small = sum(1 for m in msgs if len(serialize(m)) <= cutoff)
        return small / len(msgs)


#: A fleet-shaped default mix: ~90% of messages at or under 512 B
#: (15-byte smalls plus sub-512B arrays), with a tail of KB-range
#: payloads.
FLEET_MIX = TraceMix(
    name="fleet",
    components=(
        TraceComponent(WorkloadSpec("tiny", "bench.Small", 0), 0.55),
        TraceComponent(WorkloadSpec("ints64", "bench.IntArray", 64), 0.20),
        TraceComponent(WorkloadSpec("chars256", "bench.CharArray", 256), 0.15),
        TraceComponent(WorkloadSpec("ints512", "bench.IntArray", 512), 0.05),
        TraceComponent(WorkloadSpec("chars4k", "bench.CharArray", 4096), 0.05),
    ),
)


NESTED_PROTO = """
syntax = "proto3";
package nested;

// The "huge messages with deeply nested structures" shape of Google's
// protobuf benchmark suite (paper §VI-C.1).
message Node {
  uint64 id = 1;
  string label = 2;
  repeated uint32 weights = 3;
  double score = 4;
  bool active = 5;
  repeated Node children = 6;
}
"""


def nested_schema() -> CompiledSchema:
    return compile_schema(NESTED_PROTO)


def deeply_nested(
    depth: int = 5,
    fanout: int = 3,
    weights_per_node: int = 8,
    schema: CompiledSchema | None = None,
    factory: WorkloadFactory | None = None,
) -> Message:
    """Build a tree-shaped message: ``fanout``^``depth`` leaves, every
    node carrying scalars, a string, and a packed array."""
    schema = schema or nested_schema()
    factory = factory or WorkloadFactory(schema=workload_schema())
    Node = schema["nested.Node"]
    counter = [0]

    def build(level: int) -> Message:
        counter[0] += 1
        node = Node(
            id=counter[0],
            label=f"node-{counter[0]}-{'x' * (counter[0] % 20)}",
            weights=[int(v) for v in factory.int_elements(weights_per_node)],
            score=counter[0] / 7.0,
            active=bool(counter[0] % 2),
        )
        if level < depth:
            for _ in range(fanout):
                node.children.append(build(level + 1))
        return node

    return build(1)
