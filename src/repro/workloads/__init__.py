"""Synthetic workloads: the paper's benchmark messages and generators."""

from .traces import (
    FLEET_MIX,
    NESTED_PROTO,
    TraceComponent,
    TraceMix,
    deeply_nested,
    nested_schema,
)
from .openloop import (
    OpenLoopConfig,
    OpenLoopResult,
    percentile,
    run_open_loop,
)
from .messages import (
    SMALL,
    STANDARD_WORKLOADS,
    WORKLOAD_PROTO,
    X128_INTS,
    X512_INTS,
    X8000_CHARS,
    WorkloadFactory,
    WorkloadSpec,
    workload_schema,
)

__all__ = [
    "FLEET_MIX",
    "NESTED_PROTO",
    "TraceComponent",
    "TraceMix",
    "deeply_nested",
    "nested_schema",
    "SMALL",
    "STANDARD_WORKLOADS",
    "WORKLOAD_PROTO",
    "X128_INTS",
    "X512_INTS",
    "X8000_CHARS",
    "WorkloadFactory",
    "WorkloadSpec",
    "workload_schema",
    "OpenLoopConfig",
    "OpenLoopResult",
    "percentile",
    "run_open_loop",
]
