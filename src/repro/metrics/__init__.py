"""Prometheus-style metrics and the monitoring/stability pipeline (§VI)."""

from .exporters import EndpointExporter, OverloadExporter
from .monitor import MonitorError, Scraper, StabilityMonitor, TimeSeries
from .registry import Counter, Gauge, Histogram, MetricError, MetricsRegistry, Sample

__all__ = [
    "EndpointExporter",
    "OverloadExporter",
    "MonitorError",
    "Scraper",
    "StabilityMonitor",
    "TimeSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Sample",
]
