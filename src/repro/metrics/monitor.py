"""Scraping, rate computation, and stability detection (§VI).

The paper's monitoring process scrapes the library-level metrics, derives
the per-second *instant rate of increase* from the last two data points of
each counter, and only collects final results once the request rate has
been stable — within 1% — for a while (≈20 s).  This module reproduces
that pipeline over simulated (or real) time:

* :class:`TimeSeries` — timestamped samples with instant/windowed rates;
* :class:`Scraper` — periodically snapshots a registry's counters into
  series;
* :class:`StabilityMonitor` — the within-tolerance steady-state detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import MetricsRegistry

__all__ = ["TimeSeries", "Scraper", "StabilityMonitor", "MonitorError"]


class MonitorError(RuntimeError):
    """Monitoring misuse (e.g. rate over fewer than two samples)."""


@dataclass
class TimeSeries:
    """Timestamped observations of one metric."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def observe(self, t: float, value: float) -> None:
        if self.times and t <= self.times[-1]:
            raise MonitorError(f"{self.name}: non-monotonic sample time {t}")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def instant_rate(self) -> float:
        """Per-second rate of increase from the last two data points —
        the paper's 'instant rate of increase' (§VI)."""
        if len(self.times) < 2:
            raise MonitorError(f"{self.name}: instant rate needs two samples")
        dt = self.times[-1] - self.times[-2]
        return (self.values[-1] - self.values[-2]) / dt

    def rates(self) -> list[float]:
        """Per-interval rates over the whole series."""
        return [
            (v1 - v0) / (t1 - t0)
            for (t0, v0), (t1, v1) in zip(
                zip(self.times, self.values), zip(self.times[1:], self.values[1:])
            )
        ]

    def last(self) -> float:
        if not self.values:
            raise MonitorError(f"{self.name}: empty series")
        return self.values[-1]


class Scraper:
    """Snapshots registry samples into per-metric time series."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.series: dict[str, TimeSeries] = {}

    def scrape(self, t: float) -> None:
        for sample in self.registry.collect():
            key = sample.render().split(" ")[0]  # name{labels}
            ts = self.series.get(key)
            if ts is None:
                ts = TimeSeries(key)
                self.series[key] = ts
            ts.observe(t, sample.value)

    def get(self, key: str) -> TimeSeries:
        try:
            return self.series[key]
        except KeyError:
            raise MonitorError(f"no series {key!r} scraped yet") from None


class StabilityMonitor:
    """Declares steady state once the rate has stayed within ``tolerance``
    of its window mean for ``window`` consecutive intervals."""

    def __init__(self, window: int = 3, tolerance: float = 0.01) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.tolerance = tolerance

    def is_stable(self, series: TimeSeries) -> bool:
        rates = series.rates()
        if len(rates) < self.window:
            return False
        recent = rates[-self.window :]
        mean = sum(recent) / len(recent)
        if mean == 0:
            return all(r == 0 for r in recent)
        return all(abs(r - mean) <= self.tolerance * abs(mean) for r in recent)

    def stable_rate(self, series: TimeSeries) -> float:
        """The steady-state rate (instant rate once stable)."""
        if not self.is_stable(series):
            raise MonitorError(f"{series.name}: not yet stable")
        return series.instant_rate()
