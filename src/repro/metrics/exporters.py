"""Library-level instrumentation adapters (§VI).

"The RPC over RDMA library is directly instrumentalized at the library
level with a Prometheus client ... This permits the gathering of
statistics independently of the scenario or application."

:class:`EndpointExporter` mirrors an endpoint's
:class:`~repro.core.endpoint.EndpointStats` (plus credits and allocator
occupancy) into a registry; call :meth:`update` before each scrape — the
equivalent of the client's collect callback.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry

__all__ = ["EndpointExporter"]


_COUNTERS = (
    ("requests_sent", "requests enqueued by the client"),
    ("responses_received", "responses delivered to continuations"),
    ("requests_received", "requests dispatched to handlers"),
    ("responses_sent", "responses enqueued by the server"),
    ("blocks_sent", "protocol blocks transmitted"),
    ("blocks_received", "protocol blocks received"),
    ("bytes_sent", "payload bytes transmitted"),
    ("bytes_received", "payload bytes received"),
    ("handler_errors", "handler faults turned into RPC errors"),
)


class EndpointExporter:
    """Exports one endpoint's statistics under a name prefix."""

    def __init__(self, registry: MetricsRegistry, endpoint, prefix: str) -> None:
        self.endpoint = endpoint
        self._counters = {}
        # Last raw value seen per field: endpoint stats CAN regress — a
        # connection reset or a swapped-in endpoint object restarts them
        # at zero — and the exported counter must absorb that by
        # re-basing, never by raising mid-scrape.
        self._raw: dict[str, float] = {}
        self.resets_detected = 0
        for field, help_text in _COUNTERS:
            self._counters[field] = registry.counter(
                f"{prefix}_{field}_total", help_text
            )
        self._credits = registry.gauge(f"{prefix}_credits", "credits available")
        self._credit_low = registry.gauge(
            f"{prefix}_credits_low_watermark", "lowest credit level observed"
        )
        self._live_blocks = registry.gauge(
            f"{prefix}_sbuf_live_blocks", "unrecycled blocks in the send buffer"
        )
        self._sbuf_bytes = registry.gauge(
            f"{prefix}_sbuf_live_bytes", "bytes held by unrecycled blocks"
        )

    def update(self) -> None:
        """Refresh all exported values from the endpoint."""
        stats = self.endpoint.stats
        for field, counter in self._counters.items():
            value = getattr(stats, field)
            last = self._raw.get(field, 0.0)
            if value < last:
                # The underlying stat restarted (endpoint reset/replaced):
                # re-base on the new epoch — everything since the restart
                # is new growth on top of the monotone exported counter.
                self.resets_detected += 1
                delta = value
            else:
                delta = value - last
            self._raw[field] = value
            if delta:
                counter.inc(delta)
        self._credits.set(self.endpoint.credits.available)
        self._credit_low.set(self.endpoint.credits.low_watermark)
        self._live_blocks.set(self.endpoint.allocator.live_count)
        self._sbuf_bytes.set(self.endpoint.allocator.bytes_live)
