"""Library-level instrumentation adapters (§VI).

"The RPC over RDMA library is directly instrumentalized at the library
level with a Prometheus client ... This permits the gathering of
statistics independently of the scenario or application."

:class:`EndpointExporter` mirrors an endpoint's
:class:`~repro.core.endpoint.EndpointStats` (plus credits and allocator
occupancy) into a registry; call :meth:`update` before each scrape — the
equivalent of the client's collect callback.

:class:`OverloadExporter` does the same for the overload-control
subsystem (docs/OVERLOAD.md): per-stage deadline drops, per-lane
admission outcomes, circuit-breaker state, degradation level, and the
client retry budget.  Every source is optional, so one exporter covers
any deployment shape.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry
from repro.runtime.overload import LANE_NAMES, CircuitBreaker

__all__ = ["EndpointExporter", "OverloadExporter"]


_COUNTERS = (
    ("requests_sent", "requests enqueued by the client"),
    ("responses_received", "responses delivered to continuations"),
    ("requests_received", "requests dispatched to handlers"),
    ("responses_sent", "responses enqueued by the server"),
    ("blocks_sent", "protocol blocks transmitted"),
    ("blocks_received", "protocol blocks received"),
    ("bytes_sent", "payload bytes transmitted"),
    ("bytes_received", "payload bytes received"),
    ("handler_errors", "handler faults turned into RPC errors"),
)


class EndpointExporter:
    """Exports one endpoint's statistics under a name prefix."""

    def __init__(self, registry: MetricsRegistry, endpoint, prefix: str) -> None:
        self.endpoint = endpoint
        self._counters = {}
        # Last raw value seen per field: endpoint stats CAN regress — a
        # connection reset or a swapped-in endpoint object restarts them
        # at zero — and the exported counter must absorb that by
        # re-basing, never by raising mid-scrape.
        self._raw: dict[str, float] = {}
        self.resets_detected = 0
        for field, help_text in _COUNTERS:
            self._counters[field] = registry.counter(
                f"{prefix}_{field}_total", help_text
            )
        self._credits = registry.gauge(f"{prefix}_credits", "credits available")
        self._credit_low = registry.gauge(
            f"{prefix}_credits_low_watermark", "lowest credit level observed"
        )
        self._live_blocks = registry.gauge(
            f"{prefix}_sbuf_live_blocks", "unrecycled blocks in the send buffer"
        )
        self._sbuf_bytes = registry.gauge(
            f"{prefix}_sbuf_live_bytes", "bytes held by unrecycled blocks"
        )

    def update(self) -> None:
        """Refresh all exported values from the endpoint."""
        stats = self.endpoint.stats
        for field, counter in self._counters.items():
            value = getattr(stats, field)
            last = self._raw.get(field, 0.0)
            if value < last:
                # The underlying stat restarted (endpoint reset/replaced):
                # re-base on the new epoch — everything since the restart
                # is new growth on top of the monotone exported counter.
                self.resets_detected += 1
                delta = value
            else:
                delta = value - last
            self._raw[field] = value
            if delta:
                counter.inc(delta)
        self._credits.set(self.endpoint.credits.available)
        self._credit_low.set(self.endpoint.credits.low_watermark)
        self._live_blocks.set(self.endpoint.allocator.live_count)
        self._sbuf_bytes.set(self.endpoint.allocator.bytes_live)


_BREAKER_STATE_CODE = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}


class OverloadExporter:
    """Exports the overload-control subsystem under a name prefix.

    ``stages`` is any iterable of objects carrying a ``deadline_expired``
    mapping of stage name -> drop count (the server endpoint, the xRPC
    server, the DPU front end); ``admissions`` any iterable of
    :class:`~repro.runtime.overload.AdmissionController`.  Absent sources
    export nothing, so the same class serves every deployment shape.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str = "overload",
        *,
        stages=(),
        admissions=(),
        breaker=None,
        degradation=None,
        budget=None,
    ) -> None:
        self.stages = list(stages)
        self.admissions = list(admissions)
        self.breaker = breaker
        self.degradation = degradation
        self.budget = budget
        # Labelled-counter re-base state, same contract as
        # EndpointExporter: sources can restart at zero mid-run.
        self._raw: dict[tuple[str, str], float] = {}
        self._deadline = registry.counter(
            f"{prefix}_deadline_expired_total",
            "requests dropped with an expired deadline, by datapath stage",
            label_names=("stage",),
        )
        self._admitted = registry.counter(
            f"{prefix}_admitted_total",
            "requests admitted by admission control, by priority lane",
            label_names=("lane",),
        )
        self._shed = registry.counter(
            f"{prefix}_shed_total",
            "requests shed by admission control, by priority lane",
            label_names=("lane",),
        )
        self._breaker_state = registry.gauge(
            f"{prefix}_breaker_state",
            "offload circuit breaker state (0 closed, 1 half-open, 2 open)",
        )
        self._breaker_trips = registry.counter(
            f"{prefix}_breaker_trips_total", "circuit breaker trips"
        )
        self._breaker_probes = registry.counter(
            f"{prefix}_breaker_probes_total", "half-open probe requests admitted"
        )
        self._breaker_denied = registry.counter(
            f"{prefix}_breaker_denied_total",
            "offload requests denied by the breaker (host-parse fallback)",
        )
        self._level = registry.gauge(
            f"{prefix}_degradation_level", "current degradation ladder level"
        )
        self._tokens = registry.gauge(
            f"{prefix}_retry_tokens", "retry-budget tokens remaining"
        )
        self._retries_spent = registry.counter(
            f"{prefix}_retries_spent_total", "retries charged to the budget"
        )
        self._retries_suppressed = registry.counter(
            f"{prefix}_retries_suppressed_total",
            "retries suppressed by an exhausted budget",
        )

    def _bump(self, key: tuple[str, str], value: float, child) -> None:
        last = self._raw.get(key, 0.0)
        delta = value if value < last else value - last
        self._raw[key] = value
        if delta:
            child.inc(delta)

    def update(self) -> None:
        """Refresh all exported values from the attached sources."""
        totals: dict[str, float] = {}
        for source in self.stages:
            for stage, count in source.deadline_expired.items():
                totals[stage] = totals.get(stage, 0.0) + count
        for stage, value in totals.items():
            self._bump(("deadline", stage), value,
                       self._deadline.labels(stage))
        admitted: dict[int, float] = {}
        shed: dict[int, float] = {}
        for ctl in self.admissions:
            for lane, count in ctl.admitted.items():
                admitted[lane] = admitted.get(lane, 0.0) + count
            for lane, count in ctl.shed.items():
                shed[lane] = shed.get(lane, 0.0) + count
        for lane, value in admitted.items():
            name = LANE_NAMES.get(lane, str(lane))
            self._bump(("admitted", name), value,
                       self._admitted.labels(name))
        for lane, value in shed.items():
            name = LANE_NAMES.get(lane, str(lane))
            self._bump(("shed", name), value,
                       self._shed.labels(name))
        if self.breaker is not None:
            self._breaker_state.set(
                _BREAKER_STATE_CODE.get(self.breaker.state, -1)
            )
            self._bump(("breaker", "trips"),
                       self.breaker.trips, self._breaker_trips)
            self._bump(("breaker", "probes"),
                       self.breaker.probes, self._breaker_probes)
            self._bump(("breaker", "denied"),
                       self.breaker.denied, self._breaker_denied)
        if self.degradation is not None:
            self._level.set(self.degradation.level)
        if self.budget is not None:
            self._tokens.set(self.budget.tokens)
            self._bump(("budget", "spent"),
                       self.budget.spent, self._retries_spent)
            self._bump(("budget", "suppressed"),
                       self.budget.suppressed, self._retries_suppressed)
