"""Prometheus-style metrics primitives.

The paper instruments the RPC-over-RDMA library itself with a Prometheus
client and scrapes it from a monitoring server (§VI).  This module is that
client: counters, gauges and histograms with label support, a registry,
and the text exposition format.  :mod:`repro.metrics.monitor` adds the
scraping/stability side.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MetricError", "Counter", "Gauge", "Histogram", "MetricsRegistry", "Sample"]


class MetricError(ValueError):
    """Invalid metric usage (bad labels, negative counter increment...)."""


@dataclass(frozen=True)
class Sample:
    """One exposition sample."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def render(self) -> str:
        if self.labels:
            inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
            return f"{self.name}{{{inner}}} {self.value}"
        return f"{self.name} {self.value}"


class _MetricBase:
    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...]) -> None:
        if not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._children: dict[tuple[str, ...], "_MetricBase"] = {}
        self._is_child = False

    def labels(self, *values: str):
        """Child metric for one label combination."""
        if self._is_child:
            raise MetricError("labels() on a child metric")
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name}: expected {len(self.label_names)} label values, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            child._is_child = True
            self._children[key] = child
        return child

    def _new_child(self) -> "_MetricBase":
        """Construct one label-combination leaf (histograms override to
        carry their bucket layout into children)."""
        return type(self)(self.name, self.help, ())

    def _check_leaf(self) -> None:
        if self.label_names and not self._is_child:
            raise MetricError(f"{self.name}: call .labels(...) first")

    def samples(self) -> list[Sample]:
        raise NotImplementedError

    def _iter_leaves(self):
        if self.label_names and not self._is_child:
            for key, child in self._children.items():
                yield tuple(zip(self.label_names, key)), child
        else:
            yield (), self


class Counter(_MetricBase):
    """Monotonically increasing value."""

    def __init__(self, name: str, help_text: str = "", label_names: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        if amount < 0:
            raise MetricError(f"{self.name}: counters cannot decrease")
        self.value += amount

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, labels, leaf.value) for labels, leaf in self._iter_leaves()
        ]


class Gauge(_MetricBase):
    """Freely settable value."""

    def __init__(self, name: str, help_text: str = "", label_names: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self.value = 0.0

    def set(self, value: float) -> None:
        self._check_leaf()
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self.value -= amount

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, labels, leaf.value) for labels, leaf in self._iter_leaves()
        ]


class Histogram(_MetricBase):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    DEFAULT_BUCKETS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, float("inf"))

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        if list(buckets) != sorted(buckets):
            raise MetricError("buckets must be sorted")
        if buckets and buckets[-1] != float("inf"):
            buckets = tuple(buckets) + (float("inf"),)
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    #: quantiles rendered into the text exposition alongside the buckets
    EXPOSED_QUANTILES = (0.5, 0.95, 0.99)

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, (), self.buckets)

    def observe(self, value: float) -> None:
        self._check_leaf()
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile via linear interpolation inside the
        owning bucket (``histogram_quantile`` semantics).  Returns 0.0
        for an empty histogram; a quantile landing in the ``+Inf`` bucket
        clamps to the highest finite bound — the estimate cannot exceed
        what the layout can resolve."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"{self.name}: quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lo = 0.0
        for bound, c in zip(self.buckets, self.counts):
            prev = cumulative
            cumulative += c
            if cumulative >= target and c:
                if bound == float("inf"):
                    return lo
                return lo + (bound - lo) * ((target - prev) / c)
            if bound != float("inf"):
                lo = bound
        return lo

    def samples(self) -> list[Sample]:
        out = []
        for labels, leaf in self._iter_leaves():
            cumulative = 0
            for bound, c in zip(leaf.buckets, leaf.counts):
                cumulative += c
                le = "+Inf" if bound == float("inf") else repr(bound)
                out.append(
                    Sample(f"{self.name}_bucket", labels + (("le", le),), cumulative)
                )
            out.append(Sample(f"{self.name}_sum", labels, leaf.total))
            out.append(Sample(f"{self.name}_count", labels, leaf.count))
            for q in self.EXPOSED_QUANTILES:
                out.append(
                    Sample(self.name, labels + (("quantile", str(q)),),
                           leaf.quantile(q))
                )
        return out


class MetricsRegistry:
    """Holds all metrics; renders the text exposition format."""

    def __init__(self) -> None:
        self._metrics: dict[str, _MetricBase] = {}

    def register(self, metric: _MetricBase):
        if metric.name in self._metrics:
            raise MetricError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str = "", label_names: tuple[str, ...] = ()) -> Counter:
        return self.register(Counter(name, help_text, label_names))

    def gauge(self, name: str, help_text: str = "", label_names: tuple[str, ...] = ()) -> Gauge:
        return self.register(Gauge(name, help_text, label_names))

    def histogram(self, name: str, help_text: str = "", label_names: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = Histogram.DEFAULT_BUCKETS) -> Histogram:
        return self.register(Histogram(name, help_text, label_names, buckets))

    def get(self, name: str) -> _MetricBase:
        return self._metrics[name]

    def collect(self) -> list[Sample]:
        out: list[Sample] = []
        for metric in self._metrics.values():
            out.extend(metric.samples())
        return out

    def expose(self) -> str:
        """Prometheus text format (simplified: HELP + samples)."""
        lines = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.extend(s.render() for s in metric.samples())
        return "\n".join(lines) + "\n"
