"""Memory substrate: virtual address space, pinned regions, offset
allocator, and arenas.

This package models the memory architecture the paper's shared address
space rests on (§III-B, §IV-A): mirrored pinned buffers at identical
virtual addresses on both sides, VMA-style offset allocation of protocol
blocks with external bookkeeping, and bump-pointer arenas for in-place
object construction.
"""

from .arena import Arena, ArenaExhausted
from .offset_allocator import AllocationError, OffsetAllocator
from .region import AddressSpace, MemoryError_, MemoryRegion
from .shm import SharedRegion, segment_name

__all__ = [
    "Arena",
    "ArenaExhausted",
    "AllocationError",
    "OffsetAllocator",
    "AddressSpace",
    "MemoryError_",
    "MemoryRegion",
    "SharedRegion",
    "segment_name",
]
