"""Offset-based dynamic allocator with fully external bookkeeping.

The paper allocates protocol blocks from the send buffer with the Vulkan®
Memory Allocator (§IV-A): RPCs complete out of order on the server, so a
future block can outlive a past one and a ring buffer would head-of-line
block; and because the managed memory is *remote*, the allocator must keep
its state entirely outside the managed range and hand out plain offsets,
not pointers.

:class:`OffsetAllocator` reproduces those properties:

* works purely on ``(offset, size)`` pairs over a virtual range of bytes it
  never touches;
* bookkeeping (free list, live-allocation table) lives in ordinary Python
  structures, i.e. "externally";
* first-fit over an address-ordered free list with eager coalescing on
  free, the classic arrangement VMA defaults to for small heaps;
* arbitrary power-of-two alignment per allocation (blocks need 1024-byte
  alignment so their bucket index fits the 4-byte immediate, §IV-E).
"""

from __future__ import annotations

__all__ = ["AllocationError", "OffsetAllocator"]


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied or a free is invalid."""


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class OffsetAllocator:
    """First-fit offset allocator with coalescing.

    Parameters
    ----------
    capacity:
        Size in bytes of the managed virtual range ``[0, capacity)``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # Address-ordered free list of (offset, size); invariant: entries
        # are disjoint, sorted, and never adjacent (always coalesced).
        self._free: list[tuple[int, int]] = [(0, capacity)]
        # offset -> (reserved_start, reserved_size); the reserved span may
        # start before the returned offset because of alignment padding.
        self._live: dict[int, tuple[int, int]] = {}

    # -- introspection -------------------------------------------------------

    @property
    def bytes_free(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def bytes_live(self) -> int:
        return sum(size for _, size in self._live.values())

    @property
    def live_count(self) -> int:
        return len(self._live)

    def is_empty(self) -> bool:
        """True when nothing is allocated (range fully recycled)."""
        return not self._live

    def live_allocations(self) -> list[tuple[int, int]]:
        """[(offset, reserved_size)] of live allocations, for debugging."""
        return [(off, span[1]) for off, span in sorted(self._live.items())]

    # -- allocate / free -----------------------------------------------------

    def allocate(self, size: int, alignment: int = 1) -> int:
        """Reserve ``size`` bytes aligned to ``alignment``; returns offset.

        Raises :class:`AllocationError` when no free span fits (the caller
        — the block writer — treats that as back-pressure and retries after
        acknowledgments recycle memory).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if not _is_pow2(alignment):
            raise ValueError("alignment must be a power of two")
        for idx, (start, span) in enumerate(self._free):
            aligned = _align_up(start, alignment)
            pad = aligned - start
            if pad + size > span:
                continue
            # Reserve [start, aligned+size): the alignment padding is
            # charged to the allocation so the free list never fragments
            # into unusable slivers smaller than the alignment.
            reserved = pad + size
            rest = span - reserved
            if rest:
                self._free[idx] = (start + reserved, rest)
            else:
                del self._free[idx]
            self._live[aligned] = (start, reserved)
            return aligned
        raise AllocationError(
            f"no free span for {size} bytes @ align {alignment} "
            f"({self.bytes_free} bytes free in {len(self._free)} spans)"
        )

    def free(self, offset: int) -> None:
        """Release a previous allocation; coalesces with neighbours."""
        try:
            start, reserved = self._live.pop(offset)
        except KeyError:
            raise AllocationError(f"free of unallocated offset {offset:#x}") from None
        self._insert_free(start, reserved)

    def _insert_free(self, start: int, size: int) -> None:
        # Binary search for the insertion point in the sorted free list.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        idx = lo
        end = start + size
        # Coalesce with successor.
        if idx < len(self._free) and self._free[idx][0] == end:
            size += self._free[idx][1]
            end = start + size
            del self._free[idx]
        # Coalesce with predecessor.
        if idx > 0:
            pstart, psize = self._free[idx - 1]
            if pstart + psize == start:
                self._free[idx - 1] = (pstart, psize + size)
                return
            if pstart + psize > start:
                raise AllocationError("double free or corrupted free list")
        self._free.insert(idx, (start, size))

    def reset(self) -> None:
        """Drop all allocations and return to the pristine state."""
        self._free = [(0, self.capacity)]
        self._live.clear()
