"""Shared-memory backed regions for the multiprocess transport.

The in-process simulation gives every :class:`~repro.memory.region.MemoryRegion`
a private ``bytearray`` and lets the fabric copy bytes between the two
backings — an honest model of two machines with separate RAM joined by a
DMA engine.  The ``shm`` transport keeps the same model but makes the
*receive* side of each mirrored pair a ``multiprocessing.shared_memory``
segment: the sender's fabric maps the receiver's RBuf segment and plays
the DMA engine itself, writing payload bytes directly into physical pages
the receiver also has mapped.  The receiver's zero-copy ``memoryview``
reads (deserializer, response framing) then really are zero-copy across
an OS process boundary.

A :class:`SharedRegion` is address-compatible with ``MemoryRegion`` —
same base/size/name semantics, same typed accessors — its backing is just
a ``memoryview`` over the segment instead of a ``bytearray``.

Lifecycle: exactly one process *creates* a segment (and is responsible
for ``unlink``); every other process *attaches* by segment name and only
``close``\\ s.  :func:`cleanup` is idempotent and safe to call from
``finally`` blocks and supervisor teardown paths, so a crashed child
never strands more than its own mapping (the creator's unlink still
removes the segment from ``/dev/shm``).
"""

from __future__ import annotations

import os
import secrets

from .region import MemoryRegion

__all__ = ["SharedRegion", "segment_name"]


def segment_name(tag: str) -> str:
    """A collision-resistant ``/dev/shm`` segment name: tag + pid + nonce,
    so parallel test runs and crashed predecessors never alias."""
    clean = "".join(c if c.isalnum() else "-" for c in tag)[:32]
    return f"repro-{clean}-{os.getpid()}-{secrets.token_hex(4)}"


class SharedRegion(MemoryRegion):
    """A pinned region whose backing store is a shared-memory segment."""

    __slots__ = ("shm", "owner")

    def __init__(self, base: int, size: int, name: str = "region", *,
                 segment: str | None = None, create: bool = True) -> None:
        # Imported lazily: multiprocessing.shared_memory spawns the
        # resource tracker on first use, which pure-inproc runs never need.
        from multiprocessing import shared_memory

        if base <= 0:
            raise ValueError("region base must be a positive virtual address")
        if size <= 0:
            raise ValueError("region size must be positive")
        self.base = base
        self.size = size
        self.name = name
        if create:
            segment = segment or segment_name(name)
            self.shm = shared_memory.SharedMemory(name=segment, create=True, size=size)
        else:
            if segment is None:
                raise ValueError("attaching requires the segment name")
            self.shm = shared_memory.SharedMemory(name=segment)
            if self.shm.size < size:
                self.shm.close()
                raise ValueError(
                    f"{name}: segment {segment} is {self.shm.size}B, need {size}B"
                )
        self.owner = create
        # The allocated segment may be page-rounded past the requested
        # size; the region exposes exactly [base, base+size).
        self.buf = self.shm.buf[:size]

    @property
    def segment(self) -> str:
        """The ``/dev/shm`` name a peer process attaches with."""
        return self.shm.name

    @classmethod
    def attach(cls, base: int, size: int, segment: str, name: str = "region") -> "SharedRegion":
        """Map an existing segment created by a peer process."""
        return cls(base, size, name, segment=segment, create=False)

    def cleanup(self) -> None:
        """Release this mapping; the creating process also unlinks the
        segment.  Idempotent — teardown paths may race."""
        if self.shm is None:
            return
        # Drop the exported slice first: SharedMemory.close() refuses
        # while memoryviews into the mapping are alive.
        self.buf = bytearray(0)
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
        self.shm = None
