"""Virtual address space and pinned memory regions.

The paper's shared address space (§III-B) is the keystone of the design: a
pointer value ``x`` inside a request on the DPU must denote the same bytes
at virtual address ``x`` on the host, because receive buffers **mirror**
the remote send buffers at identical virtual addresses.  We model this
explicitly:

* a :class:`MemoryRegion` is a contiguous run of simulated "pinned" memory
  with a fixed 64-bit base virtual address and a private backing store
  (a ``bytearray``, one per side — the two machines do *not* share RAM);
* an :class:`AddressSpace` is one side's view: a set of non-overlapping
  regions indexed by address.  Both the DPU and the host register a region
  at the *same* base address for each mirrored buffer pair; the simulated
  RDMA fabric copies bytes between the two backing stores, which is exactly
  what the DMA engine does through PCIe on real hardware.

All pointer arithmetic in the deserializer and the block protocol operates
on these 64-bit virtual addresses, never on Python object references, so
address-identity bugs the paper's design must avoid (e.g. forgetting to
mirror a buffer) fail loudly here too.
"""

from __future__ import annotations

import bisect
import struct

__all__ = ["MemoryError_", "MemoryRegion", "AddressSpace"]


class MemoryError_(RuntimeError):
    """Out-of-bounds or unmapped access in the simulated address space.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class MemoryRegion:
    """A contiguous, pinned, registered memory region.

    Parameters
    ----------
    base:
        Virtual base address.  Must be nonzero (zero is the null page).
    size:
        Region length in bytes.
    name:
        Diagnostic label (e.g. ``"dpu.sbuf[0]"``).
    """

    __slots__ = ("base", "size", "name", "buf")

    def __init__(self, base: int, size: int, name: str = "region") -> None:
        if base <= 0:
            raise ValueError("region base must be a positive virtual address")
        if size <= 0:
            raise ValueError("region size must be positive")
        self.base = base
        self.size = size
        self.name = name
        self.buf = bytearray(size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    def _check(self, addr: int, length: int) -> int:
        if not self.contains(addr, length):
            raise MemoryError_(
                f"{self.name}: access [{addr:#x}, {addr + length:#x}) outside "
                f"[{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    # -- byte access ---------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        off = self._check(addr, length)
        return bytes(self.buf[off : off + length])

    def view(self, addr: int, length: int) -> memoryview:
        """Zero-copy view of the backing bytes (host-side reads use this)."""
        off = self._check(addr, length)
        return memoryview(self.buf)[off : off + length]

    def write(self, addr: int, data) -> None:
        off = self._check(addr, len(data))
        self.buf[off : off + len(data)] = data

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        off = self._check(addr, length)
        self.buf[off : off + length] = bytes([value]) * length

    # -- typed access (little-endian, matching the wire assumption) ----------

    def read_u64(self, addr: int) -> int:
        off = self._check(addr, 8)
        return struct.unpack_from("<Q", self.buf, off)[0]

    def write_u64(self, addr: int, value: int) -> None:
        off = self._check(addr, 8)
        struct.pack_into("<Q", self.buf, off, value & 0xFFFFFFFFFFFFFFFF)

    def read_u32(self, addr: int) -> int:
        off = self._check(addr, 4)
        return struct.unpack_from("<I", self.buf, off)[0]

    def write_u32(self, addr: int, value: int) -> None:
        off = self._check(addr, 4)
        struct.pack_into("<I", self.buf, off, value & 0xFFFFFFFF)


class AddressSpace:
    """One side's virtual address space: non-overlapping regions.

    Lookup is O(log n) by bisect on sorted region bases; n is tiny (a few
    buffers per connection), mirroring the paper's bounded resource model.
    """

    def __init__(self, name: str = "as") -> None:
        self.name = name
        self._bases: list[int] = []
        self._regions: list[MemoryRegion] = []

    def map(self, region: MemoryRegion) -> MemoryRegion:
        """Register a region; rejects overlap with any existing mapping."""
        idx = bisect.bisect_left(self._bases, region.base)
        if idx > 0 and self._regions[idx - 1].end > region.base:
            raise MemoryError_(
                f"{self.name}: {region.name} overlaps {self._regions[idx - 1].name}"
            )
        if idx < len(self._regions) and region.end > self._regions[idx].base:
            raise MemoryError_(
                f"{self.name}: {region.name} overlaps {self._regions[idx].name}"
            )
        self._bases.insert(idx, region.base)
        self._regions.insert(idx, region)
        return region

    def unmap(self, region: MemoryRegion) -> None:
        idx = bisect.bisect_left(self._bases, region.base)
        if idx >= len(self._regions) or self._regions[idx] is not region:
            raise MemoryError_(f"{self.name}: {region.name} is not mapped")
        del self._bases[idx]
        del self._regions[idx]

    def region_of(self, addr: int, length: int = 1) -> MemoryRegion:
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr, length):
                return region
        raise MemoryError_(
            f"{self.name}: address [{addr:#x}, {addr + length:#x}) is unmapped"
        )

    def regions(self) -> list[MemoryRegion]:
        return list(self._regions)

    # -- convenience pass-throughs -------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        return self.region_of(addr, length).read(addr, length)

    def view(self, addr: int, length: int) -> memoryview:
        return self.region_of(addr, length).view(addr, length)

    def write(self, addr: int, data) -> None:
        self.region_of(addr, len(data)).write(addr, data)

    def read_u64(self, addr: int) -> int:
        return self.region_of(addr, 8).read_u64(addr)

    def write_u64(self, addr: int, value: int) -> None:
        self.region_of(addr, 8).write_u64(addr, value)

    def read_u32(self, addr: int) -> int:
        return self.region_of(addr, 4).read_u32(addr)

    def write_u32(self, addr: int, value: int) -> None:
        self.region_of(addr, 4).write_u32(addr, value)
