"""Bump-pointer arenas over simulated pinned memory.

The offloaded deserializer constructs each message as one contiguous slice
(§V-C): every field — scalars, strings, repeated-field element storage,
nested messages — is carved from a single arena so the finished object can
be shipped (and later recycled) as one unit.  Arena allocation never frees
individual objects; the whole arena is released when the enclosing protocol
block is acknowledged.
"""

from __future__ import annotations

from .region import AddressSpace, MemoryRegion

__all__ = ["ArenaExhausted", "Arena"]


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class ArenaExhausted(RuntimeError):
    """The arena cannot satisfy an allocation; the caller must start a new
    block (larger messages get a block of their own, §IV)."""


class Arena:
    """A bump allocator over ``[base, base + size)`` virtual addresses.

    The arena does not own memory; it hands out addresses within a span the
    caller has already mapped (typically a block payload inside a send
    buffer).  Writes go through the provided address space.
    """

    __slots__ = ("space", "base", "size", "_top")

    def __init__(self, space: AddressSpace | MemoryRegion, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("arena size must be positive")
        self.space = space
        self.base = base
        self.size = size
        self._top = base

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self._top - self.base

    @property
    def remaining(self) -> int:
        return self.end - self._top

    def allocate(self, size: int, alignment: int = 8) -> int:
        """Reserve ``size`` bytes; returns the virtual address.

        Default alignment is 8: the paper aligns all payload allocations to
        8 bytes, sufficient for any reasonable message field type (§IV-A).
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        addr = _align_up(self._top, alignment)
        if addr + size > self.end:
            raise ArenaExhausted(
                f"arena needs {size} bytes @ {alignment}, "
                f"only {self.remaining} remain"
            )
        self._top = addr + size
        return addr

    def allocate_bytes(self, data, alignment: int = 8) -> int:
        """Allocate and write ``data``; returns its virtual address."""
        addr = self.allocate(len(data), alignment)
        if len(data):
            self.space.write(addr, data)
        return addr

    def reset(self) -> None:
        """Recycle the arena (block acknowledged)."""
        self._top = self.base
