"""Command-line interface: regenerate the paper's results and run the
code generator from a shell.

::

    python -m repro table1                     # Table I
    python -m repro fig7                       # Fig. 7 model curves
    python -m repro fig8 [--workload NAME]     # Fig. 8 datapath cells
    python -m repro workloads                  # message size accounting
    python -m repro protoc FILE [--adt] [-o DIR]
    python -m repro codegen FILE [-o DIR]      # generated codecs + WIRE_FIXED report
    python -m repro faults [--seed N] [--scenarios N]   # fault campaign
    python -m repro trace [--deployment D] [-o FILE]    # Perfetto trace
    python -m repro top [--batches N] [--live]          # stage latency table / live dashboard
    python -m repro metrics [--deployment D]            # Prometheus scrape
    python -m repro tune [--bad-start] [--verify]       # closed-loop autotuner run
"""

from __future__ import annotations

import argparse
import pathlib
import sys

__all__ = ["main"]


def _cmd_table1(args) -> int:
    from repro.sim import render_table1

    print(render_table1())
    return 0


def _cmd_fig7(args) -> int:
    from repro.sim import DEFAULT_COST_MODEL, Core

    m = DEFAULT_COST_MODEL
    counts = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    print(f"{'n':>6} {'int CPU ns':>11} {'int DPU ns':>11} {'char CPU ns':>12} {'char DPU ns':>12}")
    for n in counts:
        print(
            f"{n:>6} {m.int_array_ns(n, Core.HOST_X86):>11.1f} "
            f"{m.int_array_ns(n, Core.DPU_ARM):>11.1f} "
            f"{m.char_array_ns(n, Core.HOST_X86):>12.1f} "
            f"{m.char_array_ns(n, Core.DPU_ARM):>12.1f}"
        )
    return 0


_WORKLOADS = None


def _workload_map():
    global _WORKLOADS
    if _WORKLOADS is None:
        from repro.workloads import SMALL, X128_INTS, X512_INTS, X8000_CHARS

        _WORKLOADS = {
            "small": SMALL,
            "ints": X512_INTS,
            "ints128": X128_INTS,
            "chars": X8000_CHARS,
        }
    return _WORKLOADS


def _cmd_fig8(args) -> int:
    from repro.sim import DatapathSimulator, Scenario, WorkloadProfile

    profiles = []
    if args.mix:
        from repro.workloads import FLEET_MIX

        profiles.append(WorkloadProfile.measure_mix(FLEET_MIX))
    else:
        names = [args.workload] if args.workload else ["small", "ints", "chars"]
        profiles.extend(WorkloadProfile.measure(_workload_map()[n]) for n in names)
    for profile in profiles:
        print(
            f"{profile.spec.name}: wire {profile.serialized_size} B -> "
            f"object {profile.object_size} B"
        )
        for scenario in Scenario:
            result = DatapathSimulator(profile, scenario).run()
            print(
                f"  {result.summary()}  "
                f"[p50={result.latency_p50_s * 1e6:.0f}us stable={result.stable}]"
            )
    return 0


def _cmd_workloads(args) -> int:
    from repro.sim import WorkloadProfile

    print(f"{'workload':<14} {'wire B':>8} {'object B':>9} {'obj/wire':>9} "
          f"{'varints':>8} {'utf8 B':>8}")
    for spec in _workload_map().values():
        p = WorkloadProfile.measure(spec)
        print(
            f"{p.spec.name:<14} {p.serialized_size:>8} {p.object_size:>9} "
            f"{p.compression_ratio:>9.2f} {p.stats.varints_decoded:>8} "
            f"{p.stats.utf8_bytes_validated:>8}"
        )
    return 0


def _cmd_protoc(args) -> int:
    from repro.proto.codegen import protoc

    path = pathlib.Path(args.file)
    source = path.read_text()
    artifacts = protoc(source, path.name, with_adt=args.adt)
    stem = path.stem
    outdir = pathlib.Path(args.output) if args.output else path.parent
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for kind, text in artifacts.items():
        out_path = outdir / f"{stem}_{kind}.py"
        out_path.write_text(text)
        written.append(str(out_path))
    print("\n".join(written))
    return 0


def _cmd_codegen(args) -> int:
    from repro.proto import compile_schema, fixed_eligibility, specs_of_descriptor
    from repro.proto.gen_codec import generate_codec_module

    path = pathlib.Path(args.file)
    source = path.read_text()
    module_source = generate_codec_module(source, path.name)
    outdir = pathlib.Path(args.output) if args.output else path.parent
    outdir.mkdir(parents=True, exist_ok=True)
    out_path = outdir / f"{path.stem}_codec.py"
    out_path.write_text(module_source)
    print(out_path)

    schema = compile_schema(source)
    print("\nWIRE_FIXED eligibility:")
    for desc in schema.messages():
        ok, reasons = fixed_eligibility(specs_of_descriptor(desc))
        if ok:
            print(f"  {desc.full_name}: eligible")
        else:
            print(f"  {desc.full_name}: ineligible")
            for reason in reasons:
                print(f"    - {reason}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import run_campaign

    deployments = (
        ("core", "offloaded") if args.deployment == "both" else (args.deployment,)
    )
    on_result = (lambda r: print(r.render())) if args.verbose else None
    report = run_campaign(
        base_seed=args.seed,
        scenarios=args.scenarios,
        deployments=deployments,
        verify_every=args.verify_every,
        on_result=on_result,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    import json

    from repro.obs.perfetto import validate_trace_events, write_trace

    if args.check:
        doc = json.loads(pathlib.Path(args.check).read_text())
        problems = validate_trace_events(doc)
        if problems:
            for p in problems:
                print(f"invalid: {p}", file=sys.stderr)
            return 1
        n = len(doc["traceEvents"]) if isinstance(doc, dict) else len(doc)
        print(f"{args.check}: valid ({n} events)")
        return 0

    from repro.obs.runner import run_traced_workload

    res = run_traced_workload(
        deployment=args.deployment,
        requests=args.requests,
        explicit_context=args.explicit_context,
        keep_slowest=args.slowest,
        transport=args.transport,
    )
    doc = res.trace_events()
    problems = validate_trace_events(doc)
    if problems:
        for p in problems:
            print(f"exporter bug: {p}", file=sys.stderr)
        return 1
    if args.output:
        write_trace(args.output, doc)
        print(f"wrote {args.output}: {len(doc['traceEvents'])} events, "
              f"{len(res.sampled)} sampled of {len(res.timelines)} timelines")
    else:
        print(json.dumps(doc, indent=1))
    slowest = res.slowest()
    if slowest is not None:
        print(slowest.render(), file=sys.stderr)
    print(res.latency.table(), file=sys.stderr)
    return 0 if res.errors == 0 else 1


def _open_loop_config(args):
    from repro.workloads.openloop import OpenLoopConfig

    return OpenLoopConfig(
        seed=args.seed,
        ticks=args.ticks,
        offered_per_tick=args.offered,
        capacity_per_tick=args.capacity,
        bulk_fraction=args.bulk_fraction,
    )


#: the deliberately bad starting config (docs/AUTOTUNE.md#convergence):
#: maximal response batching, minimal poller budget, starved credits
BAD_START = (
    ("flush_ticks", 16),
    ("forward_budget", 1),
    ("host_passes", 1),
    ("credits", 2),
)


def _cmd_tune(args) -> int:
    import json

    from repro.runtime.overload import LANE_LATENCY
    from repro.workloads.openloop import TuneConfig, run_autotuned

    config = _open_loop_config(args)
    tune = TuneConfig(
        window_ticks=args.window,
        enabled=not args.static,
        initial=BAD_START if args.bad_start else (),
    )
    res = run_autotuned(config, tune)
    if args.verify:
        again = run_autotuned(config, tune)
        if again.tuner_fingerprint != res.tuner_fingerprint:
            print(
                f"FINGERPRINT MISMATCH: {res.tuner_fingerprint} != "
                f"{again.tuner_fingerprint}",
                file=sys.stderr,
            )
            return 1
        print(f"fingerprint verified: {res.tuner_fingerprint}", file=sys.stderr)
    if args.json:
        print(json.dumps(res.summary(), indent=2))
        return 0
    for line in res.decision_log():
        print(line)
    print()
    print(f"initial config: {res.initial_config}")
    print(f"final config:   {res.final_config}")
    print(
        f"steady goodput {res.steady_goodput():.3f}/tick, "
        f"latency-lane p99 {res.steady_p99_us(LANE_LATENCY):.0f}µs, "
        f"{res.windows} windows, {len(res.decisions)} decisions "
        f"({sum(1 for d in res.decisions if d.action == 'rollback')} rollbacks)"
    )
    print(f"decision fingerprint: {res.tuner_fingerprint}")
    return 0


def _top_live(args) -> int:
    from repro.obs.telemetry import render_dashboard
    from repro.runtime.overload import LANE_NAMES
    from repro.workloads.openloop import TuneConfig, run_autotuned

    config = _open_loop_config(args)
    tune = TuneConfig(
        window_ticks=args.window,
        enabled=args.tune,
        initial=BAD_START if args.bad_start else (),
    )
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

    def observer(hub, slo, tuner, snapshot) -> None:
        frame = render_dashboard(hub, slo=slo, tuner=tuner if args.tune else None,
                                 lane_names=LANE_NAMES)
        print(f"{clear}{frame}", flush=True)

    res = run_autotuned(config, tune, observer=observer)
    print(
        f"done: {res.result.total_completed} completed over {res.result.ticks} "
        f"ticks, {res.windows} windows", file=sys.stderr,
    )
    return 0


def _cmd_top(args) -> int:
    if args.live:
        return _top_live(args)
    from repro.metrics import MetricsRegistry
    from repro.obs.runner import run_traced_workload
    from repro.obs.timeline import StageLatencyExporter, TailSampler

    registry = MetricsRegistry()
    latency = StageLatencyExporter(registry)
    # Streaming tail sampling across batches: each batch is a fresh
    # collector (its own epoch), so retained outliers age out instead of
    # squatting in the slowest-N list with incomparable timestamps.
    sampler = TailSampler(keep_slowest=10, keep_epochs=1)
    errors = 0
    for batch in range(args.batches):
        res = run_traced_workload(
            deployment=args.deployment, requests=args.requests_per_batch,
            transport=args.transport,
        )
        latency.observe(res.timelines)
        sampler.retain(res.timelines, epoch=batch)
        errors += res.errors
        print(f"batch {batch + 1}/{args.batches}: "
              f"{res.requests - res.errors}/{res.requests} ok", file=sys.stderr)
    print(latency.table())
    print(
        f"tail sample: {len(sampler.retained())} retained "
        f"({sampler.evicted} evicted across {args.batches} epochs)",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def _cmd_metrics(args) -> int:
    from repro.obs.runner import run_traced_workload

    res = run_traced_workload(deployment=args.deployment, requests=args.requests,
                              transport=args.transport)
    print(res.registry.expose(), end="")
    return 0 if res.errors == 0 else 1


def _add_openloop_args(subparser) -> None:
    subparser.add_argument("--seed", type=int, default=2024,
                           help="arrival-process seed (default 2024)")
    subparser.add_argument("--ticks", type=int, default=1500,
                           help="event-loop ticks to drive (default 1500)")
    subparser.add_argument("--offered", type=float, default=1.6,
                           help="mean arrivals per tick (default 1.6)")
    subparser.add_argument("--capacity", type=int, default=2,
                           help="front-end forward budget per tick (default 2)")
    subparser.add_argument("--bulk-fraction", type=float, default=0.7,
                           help="fraction of arrivals on the bulk lane")
    subparser.add_argument("--window", type=int, default=50,
                           help="telemetry window in ticks (default 50)")
    subparser.add_argument(
        "--bad-start", action="store_true",
        help="start from the deliberately bad config the convergence "
        "benchmark uses (wide Nagle, budget 1, starved credits)",
    )


def _add_transport_arg(subparser) -> None:
    subparser.add_argument(
        "--transport", choices=["inproc", "shm"], default=None,
        help="fabric backend for the datapath (docs/TRANSPORT.md); default "
        "inproc, except the procs deployment which is always shm",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Protocol Buffer Deserialization DPU "
        "Offloading in the RPC Datapath' (SC 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(fn=_cmd_table1)
    sub.add_parser("fig7", help="print the Fig. 7 model curves").set_defaults(fn=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="run the Fig. 8 datapath cells")
    fig8.add_argument("--workload", choices=["small", "ints", "ints128", "chars"])
    fig8.add_argument("--mix", action="store_true",
                      help="run the fleet-shaped traffic mix instead")
    fig8.set_defaults(fn=_cmd_fig8)

    sub.add_parser("workloads", help="message size accounting").set_defaults(
        fn=_cmd_workloads
    )

    pc = sub.add_parser("protoc", help="compile a .proto file to Python modules")
    pc.add_argument("file", help=".proto source file")
    pc.add_argument("--adt", action="store_true",
                    help="also run the ADT plugin (.adt.pb analog)")
    pc.add_argument("-o", "--output", help="output directory (default: alongside input)")
    pc.set_defaults(fn=_cmd_protoc)

    cg = sub.add_parser(
        "codegen",
        help="emit per-type generated codec sources for a .proto file and "
        "report WIRE_FIXED eligibility (docs/DECODER.md)",
    )
    cg.add_argument("file", help=".proto source file")
    cg.add_argument("-o", "--output", help="output directory (default: alongside input)")
    cg.set_defaults(fn=_cmd_codegen)

    faults = sub.add_parser(
        "faults",
        help="run a seeded fault-injection campaign (docs/FAULTS.md)",
    )
    faults.add_argument("--seed", type=int, default=0, help="campaign base seed")
    faults.add_argument(
        "--scenarios", type=int, default=200, help="number of scenarios (default 200)"
    )
    faults.add_argument(
        "--deployment",
        choices=["core", "offloaded", "overload", "both"],
        default="both",
        help="which deployment(s) to break ('both' keeps its historical "
        "meaning of core+offloaded; 'overload' runs the open-loop "
        "overload-control scenarios, docs/OVERLOAD.md)",
    )
    faults.add_argument(
        "--verify-every",
        type=int,
        default=0,
        metavar="K",
        help="re-run every K-th scenario and require identical fingerprints",
    )
    faults.add_argument(
        "--verbose", action="store_true", help="print every scenario verdict"
    )
    faults.set_defaults(fn=_cmd_faults)

    trace = sub.add_parser(
        "trace",
        help="run a traced workload and export a Perfetto trace "
        "(docs/OBSERVABILITY.md)",
    )
    trace.add_argument(
        "--deployment", choices=["offloaded", "core", "procs"], default="offloaded",
        help="which datapath to trace (default: offloaded; procs = the "
        "3-OS-process shm deployment)",
    )
    _add_transport_arg(trace)
    trace.add_argument("--requests", type=int, default=60,
                       help="requests to push through (default 60)")
    trace.add_argument("-o", "--output", help="write Perfetto JSON here "
                       "(default: print to stdout)")
    trace.add_argument(
        "--explicit-context", action="store_true",
        help="carry an 8-byte trace-context word on the wire instead of "
        "deriving ids from transmit order",
    )
    trace.add_argument("--slowest", type=int, default=10,
                       help="tail-sample size: keep the N slowest requests")
    trace.add_argument("--check", metavar="FILE",
                       help="validate an existing trace file and exit")
    trace.set_defaults(fn=_cmd_trace)

    top = sub.add_parser(
        "top", help="aggregate per-stage latency quantiles over several runs, "
        "or watch a live telemetry dashboard (--live)"
    )
    top.add_argument("--deployment", choices=["offloaded", "core", "procs"],
                     default="offloaded")
    _add_transport_arg(top)
    top.add_argument("--batches", type=int, default=3,
                     help="number of traced runs to aggregate (default 3)")
    top.add_argument("--requests-per-batch", type=int, default=40,
                     help="requests per run (default 40)")
    top.add_argument(
        "--live", action="store_true",
        help="drive the open-loop workload and refresh a telemetry "
        "dashboard every window (stage table, SLO burn gauges, tuner "
        "actions — docs/AUTOTUNE.md)",
    )
    top.add_argument("--tune", action="store_true",
                     help="with --live: close the loop (arm the autotuner)")
    _add_openloop_args(top)
    top.set_defaults(fn=_cmd_top)

    tune = sub.add_parser(
        "tune",
        help="run the open-loop harness under the trace-driven autotuner "
        "and print the decision log (docs/AUTOTUNE.md)",
    )
    _add_openloop_args(tune)
    tune.add_argument("--static", action="store_true",
                      help="observe without steering (static-config twin)")
    tune.add_argument(
        "--verify", action="store_true",
        help="run twice and require identical decision fingerprints",
    )
    tune.add_argument("--json", action="store_true",
                      help="emit the run summary as JSON")
    tune.set_defaults(fn=_cmd_tune)

    metrics = sub.add_parser(
        "metrics",
        help="run a traced workload and dump the Prometheus exposition",
    )
    metrics.add_argument("--deployment", choices=["offloaded", "core", "procs"],
                         default="offloaded")
    metrics.add_argument("--requests", type=int, default=60)
    _add_transport_arg(metrics)
    metrics.set_defaults(fn=_cmd_metrics)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
