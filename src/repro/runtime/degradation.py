"""Graceful degradation under sustained overload (docs/OVERLOAD.md).

The :class:`DegradationManager` watches a scalar pressure signal (the
admission controller's normalized load) and walks a *ladder* of
reversible degradation steps: each sustained excursion above the high
watermark applies the next step, each sustained return below the low
watermark reverts the most recent one.  The standard ladder sheds
observability first (tracing rings), then trades bulk-lane latency for
efficiency (wider Nagle batching), and as a last resort trips the
circuit breaker on the DPU offload path so requests flow through the
host-parse fallback until pressure clears.

Hysteresis is deliberate on both axes: watermarks are split (high >
low) and each transition requires ``step_up_after`` / ``step_down_after``
consecutive qualifying observations, so a pressure signal oscillating
around a threshold cannot flap a step on and off every tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .flush import NagleFlush

__all__ = [
    "DegradationStep",
    "DegradationEvent",
    "DegradationManager",
    "standard_ladder",
]


@dataclass
class DegradationStep:
    """One reversible rung: ``apply()`` degrades, ``revert()`` restores."""

    name: str
    apply: Callable[[], None]
    revert: Callable[[], None]


@dataclass(frozen=True)
class DegradationEvent:
    tick: int
    action: str  # "degrade" | "recover"
    step: str
    pressure: float


@dataclass
class DegradationManager:
    """Walks the degradation ladder against a pressure signal.

    ``pressure_fn`` supplies the signal when the manager is driven via
    :meth:`on_tick` (e.g. hooked into an
    :class:`~repro.runtime.supervisor.EngineSupervisor`); callers may
    instead push observations directly with :meth:`observe`.
    """

    steps: list[DegradationStep]
    pressure_fn: Callable[[], float] | None = None
    high_watermark: float = 1.0
    low_watermark: float = 0.5
    step_up_after: int = 3
    step_down_after: int = 8
    trace: object | None = None
    metrics: object | None = None

    level: int = field(default=0, init=False)
    events: list[DegradationEvent] = field(default_factory=list, init=False)
    _above: int = field(default=0, init=False)
    _below: int = field(default=0, init=False)
    _gauge: object = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.low_watermark > self.high_watermark:
            raise ValueError("low watermark must not exceed high watermark")
        if self.metrics is not None:
            self._gauge = self.metrics.gauge(
                "degradation_level", "current degradation ladder level"
            )

    def on_tick(self, tick: int) -> None:
        """Supervisor hook: sample ``pressure_fn`` once per engine tick."""
        if self.pressure_fn is not None:
            self.observe(self.pressure_fn(), tick)

    def observe(self, pressure: float, tick: int) -> None:
        if pressure >= self.high_watermark:
            self._above += 1
            self._below = 0
        elif pressure <= self.low_watermark:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0
        if self._above >= self.step_up_after and self.level < len(self.steps):
            self._above = 0
            self._step_up(tick, pressure)
        elif self._below >= self.step_down_after and self.level > 0:
            self._below = 0
            self._step_down(tick, pressure)

    def _step_up(self, tick: int, pressure: float) -> None:
        step = self.steps[self.level]
        step.apply()
        self.level += 1
        self._note(tick, "degrade", step, pressure)

    def _step_down(self, tick: int, pressure: float) -> None:
        self.level -= 1
        step = self.steps[self.level]
        step.revert()
        self._note(tick, "recover", step, pressure)

    def _note(self, tick: int, action: str, step: DegradationStep,
              pressure: float) -> None:
        self.events.append(DegradationEvent(tick, action, step.name, pressure))
        if self._gauge is not None:
            self._gauge.set(self.level)
        if self.trace is not None:
            self.trace.instant(action, step=step.name, level=self.level,
                               pressure=round(pressure, 3))

    def recover_all(self, tick: int, pressure: float = 0.0) -> None:
        """Unwind every applied step (shutdown / test teardown)."""
        while self.level > 0:
            self._step_down(tick, pressure)


def standard_ladder(
    *,
    traced: list | None = None,
    endpoints: list | None = None,
    bulk_batch_ticks: int = 16,
    breaker=None,
    breaker_clock: Callable[[], int] | None = None,
) -> list[DegradationStep]:
    """The three-rung ladder from docs/OVERLOAD.md.

    1. ``shed_tracing`` — detach the trace recorder from every component
       in ``traced`` (their hooks become free); restore on revert.
    2. ``widen_batching`` — swap each endpoint in ``endpoints`` to a
       wide :class:`~repro.runtime.flush.NagleFlush` so bulk responses
       amortize doorbells; restore the original policy on revert.
    3. ``offload_breaker`` — trip ``breaker`` so the DPU front end
       routes through host-parse fallback; revert begins half-open
       probing and the breaker closes itself once probes succeed.

    Rungs whose targets are absent are skipped, so the ladder shrinks
    gracefully in deployments without tracing or a breaker.
    """
    steps: list[DegradationStep] = []
    if traced:
        saved: dict[int, object] = {}

        def shed() -> None:
            for comp in traced:
                saved[id(comp)] = comp.trace
                comp.trace = None

        def unshed() -> None:
            for comp in traced:
                comp.trace = saved.pop(id(comp), None)

        steps.append(DegradationStep("shed_tracing", shed, unshed))
    if endpoints:
        saved_policies: dict[int, object] = {}

        def widen() -> None:
            for ep in endpoints:
                saved_policies[id(ep)] = ep.flush_policy
                ep.flush_policy = NagleFlush(deadline_ticks=bulk_batch_ticks)

        def narrow() -> None:
            for ep in endpoints:
                ep.flush_policy = saved_policies.pop(id(ep))

        steps.append(DegradationStep("widen_batching", widen, narrow))
    if breaker is not None:
        clock = breaker_clock if breaker_clock is not None else (lambda: 0)

        def release() -> None:
            # The breaker may have healed itself already (recovery timer
            # + successful probes while the rung was held); only an
            # OPEN breaker needs the nudge into half-open probing.
            if breaker.state == breaker.OPEN:
                breaker.begin_half_open(clock(), reason="pressure cleared")

        steps.append(
            DegradationStep(
                "offload_breaker",
                lambda: breaker.trip(clock(), reason="degradation ladder"),
                release,
            )
        )
    return steps
