"""The progress engine: one pluggable event loop for the whole stack.

The paper's components each expose "an event loop function that should
be called continuously" (§III-C/D).  Before this module, every layer
hand-rolled the loop that calls it — endpoints, xRPC servers, the DPU
front end, the simulator.  ``ProgressEngine`` is the single reactor they
all register with instead:

* components implement the :class:`~repro.runtime.pollable.Pollable`
  protocol (``progress(budget) -> work_done``) and :meth:`register`;
* a pluggable :mod:`scheduling <repro.runtime.scheduling>` policy orders
  each pass (round-robin, weighted/priority, adaptive idle backoff);
* per-pollable :mod:`metrics <repro.runtime.metrics>` (polls, work,
  idle ratio, flush reasons) accrue automatically and can be exported
  into the Prometheus-style registry;
* an optional :class:`~repro.core.tracing.Tracer` records one span per
  poll, making every layer boundary observable for free.

Lifecycle: ``start()`` → ``drain()`` → ``stop()``.  The engine is also
fully usable *without* starting it — :meth:`step` performs exactly one
deterministic scheduling pass (what the simulator and the interleaving
tests need), and :meth:`drive` polls exactly one registered pollable
(the deprecation shims behind ``ClientEndpoint.progress()`` use this so
legacy call sites keep their semantics *and* gain instrumentation).
Threaded operation reuses :class:`~repro.core.executor.WorkerPool`.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from .metrics import EngineMetrics
from .pollable import resolve_poll_fn
from .scheduling import SchedulingPolicy, make_scheduler

__all__ = ["EngineState", "Registration", "ProgressEngine", "EngineError"]


class EngineError(RuntimeError):
    """Engine misuse (stepping a stopped engine, re-registration...)."""


class EngineState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"


class Registration:
    """One pollable's seat in the engine."""

    __slots__ = ("pollable", "poll_fn", "name", "weight", "priority", "index", "metrics")

    def __init__(self, pollable, poll_fn, name, weight, priority, index, metrics) -> None:
        self.pollable = pollable
        self.poll_fn = poll_fn
        self.name = name
        self.weight = weight
        self.priority = priority
        self.index = index
        self.metrics = metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registration {self.name} w={self.weight} p={self.priority}>"


class ProgressEngine:
    """Reactor driving registered pollables under a scheduling policy."""

    def __init__(
        self,
        scheduler: SchedulingPolicy | str | None = "round_robin",
        name: str = "engine",
        registry=None,
        tracer=None,
        metrics_prefix: str = "engine",
    ) -> None:
        self.name = name
        self.scheduler = make_scheduler(scheduler)
        self.tracer = tracer
        self.metrics = EngineMetrics()
        if registry is not None:
            self.metrics.bind_registry(registry, metrics_prefix)
        self.state = EngineState.NEW
        self.tick = 0
        #: optional EngineSupervisor (repro.runtime.supervisor): receives
        #: poll exceptions (may contain them) and end-of-tick progress
        #: reports for stall detection.  Set by the supervisor itself.
        self.supervisor = None
        self._handles: list[Registration] = []
        self._by_pollable: dict[int, Registration] = {}
        self._index = 0
        self._stop_event = threading.Event()
        self._pool = None
        self._owns_pool = False

    # -- registration ----------------------------------------------------------

    def register(
        self,
        pollable,
        name: str | None = None,
        weight: int = 1,
        priority: int = 0,
        poll: Callable[[int | None], int] | None = None,
    ) -> Registration:
        """Add a pollable; returns its registration handle.

        ``poll`` overrides the resolved poll function (rarely needed).
        The pollable's ``_runtime_engine`` attribute — when the object
        accepts one — is pointed at this engine so deprecation shims can
        route their calls back through :meth:`drive`.
        """
        if id(pollable) in self._by_pollable:
            raise EngineError(f"{self.name}: pollable already registered")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        poll_fn = poll or resolve_poll_fn(pollable)
        name = name or getattr(pollable, "name", None) or (
            f"{type(pollable).__name__.lower()}#{self._index}"
        )
        metrics = self.metrics.track(
            name, shared_flushes=getattr(pollable, "flush_reasons", None)
        )
        reg = Registration(pollable, poll_fn, name, weight, priority, self._index, metrics)
        self._index += 1
        self._handles.append(reg)
        self._by_pollable[id(pollable)] = reg
        try:
            pollable._runtime_engine = self
        except AttributeError:
            pass  # slotted/frozen objects simply don't get the back-pointer
        return reg

    def unregister(self, pollable) -> None:
        reg = self._by_pollable.pop(id(pollable), None)
        if reg is None:
            raise EngineError(f"{self.name}: pollable not registered")
        self._handles.remove(reg)
        if getattr(pollable, "_runtime_engine", None) is self:
            pollable._runtime_engine = None

    @property
    def registrations(self) -> list[Registration]:
        return list(self._handles)

    # -- the loop ------------------------------------------------------------------

    def _poll(self, reg: Registration, budget: int | None) -> int:
        try:
            if self.tracer is not None:
                with self.tracer.span(f"poll/{reg.name}", tick=self.tick):
                    work = reg.poll_fn(budget)
            else:
                work = reg.poll_fn(budget)
        except Exception as exc:
            # A supervisor may contain the fault (recovery/quarantine);
            # unsupervised engines keep the old fail-fast behavior.
            if self.supervisor is not None and self.supervisor.on_poll_error(reg, exc):
                work = 0
            else:
                raise
        work = int(work or 0)
        reg.metrics.record(work)
        self.scheduler.observe(reg, work)
        return work

    def step(self, budget: int | None = None) -> int:
        """One deterministic scheduling pass; returns total work done."""
        if self.state is EngineState.STOPPED:
            raise EngineError(f"{self.name}: stepped after stop()")
        self.tick += 1
        self.metrics.ticks = self.tick
        total = 0
        for reg in self.scheduler.plan(self._handles, self.tick):
            total += self._poll(reg, budget)
        if self.supervisor is not None:
            self.supervisor.after_tick(self.tick)
        self.metrics.sync()
        return total

    def drive(self, pollable, budget: int | None = None) -> int:
        """Poll exactly one pollable once (auto-registering strangers).

        This is the deprecation-shim entry point: it keeps single-
        component semantics identical to the pre-engine code while still
        recording metrics and spans.
        """
        if self.state is EngineState.STOPPED:
            raise EngineError(f"{self.name}: driven after stop()")
        reg = self._by_pollable.get(id(pollable))
        if reg is None:
            reg = self.register(pollable)
        return self._poll(reg, budget)

    def run(
        self,
        max_iters: int = 100_000,
        until: Callable[[], bool] | None = None,
        budget: int | None = None,
    ) -> int:
        """Step repeatedly until ``until()`` is true (or ``max_iters``
        passes elapse); returns the total work done."""
        total = 0
        for _ in range(max_iters):
            if until is not None and until():
                return total
            total += self.step(budget)
        if until is not None:
            raise EngineError(f"{self.name}: run() exceeded {max_iters} iterations")
        return total

    # -- lifecycle ---------------------------------------------------------------------

    def start(self, threaded: bool = False, executor=None, poll_interval: float = 0.0):
        """Enter RUNNING.  With ``threaded=True`` the loop runs on a
        :class:`~repro.core.executor.WorkerPool` (or any submitted-to
        ``executor``) until :meth:`stop`."""
        if self.state is EngineState.STOPPED:
            raise EngineError(f"{self.name}: cannot restart a stopped engine")
        self.state = EngineState.RUNNING
        if threaded:
            self._stop_event.clear()
            if executor is None:
                from repro.core.executor import WorkerPool

                executor = WorkerPool(workers=1, name=f"{self.name}-loop")
                self._owns_pool = True
            self._pool = executor

            def loop() -> None:
                while not self._stop_event.is_set():
                    self.step()
                    if poll_interval:
                        time.sleep(poll_interval)

            executor(loop)
        return self

    def _flush_all(self, reason: str) -> None:
        """Force-seal open batches on every pollable that can flush, so a
        drain is not held hostage by a Nagle deadline."""
        for reg in list(self._handles):
            flush = getattr(reg.pollable, "flush", None)
            if callable(flush):
                try:
                    flush(reason)
                except TypeError:
                    flush()  # legacy no-argument flush

    def drain(self, max_iters: int = 100_000, quiet_passes: int = 2) -> bool:
        """Step until every pollable is quiet: no work done and nothing
        ``pending()`` for ``quiet_passes`` consecutive passes.  Open
        partial batches are force-flushed each pass (deadline-based flush
        policies would otherwise stall the drain).  Returns whether the
        engine actually went quiet within ``max_iters``."""
        previous = self.state
        self.state = EngineState.DRAINING
        quiet = 0
        try:
            for _ in range(max_iters):
                self._flush_all("drain")
                work = self.step()
                pending = any(
                    getattr(reg.pollable, "pending", lambda: False)()
                    for reg in self._handles
                )
                quiet = quiet + 1 if (work == 0 and not pending) else 0
                if quiet >= quiet_passes:
                    return True
            return False
        finally:
            if previous is not EngineState.STOPPED:
                self.state = previous

    def stop(self) -> None:
        """Stop the loop (joining the thread in threaded mode) and
        refuse further stepping.  Idempotent."""
        if self.state is EngineState.STOPPED:
            return
        self._stop_event.set()
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
            self._pool = None
            self._owns_pool = False
        self.state = EngineState.STOPPED
        self.metrics.sync()

    # -- introspection -------------------------------------------------------------------

    def summary(self) -> str:
        return f"{self.name} [{self.state.value}] " + self.metrics.summary()
