"""The ``Pollable`` protocol — the unit the progress engine drives.

The paper's datapath is event-loop driven: every component exposes "an
event loop function that should be called continuously" (§III-C/D).
This module names that function.  A pollable is anything with::

    progress(budget=None) -> work_done

where ``budget`` optionally caps how much work one call may do (e.g. how
many completion-queue events to absorb) and the return value counts the
work items actually processed — the engine's scheduling policies feed on
that count to detect idleness.

Two optional extensions refine engine behavior without being required:

* ``pending() -> bool`` — true while the component still holds queued
  work (used by :meth:`ProgressEngine.drain` to know when the world has
  gone quiet);
* ``flush_reasons`` — a ``dict[str, int]`` of flush-policy decisions the
  component records; the engine surfaces it through its metrics.

Legacy components whose real per-pass body lives in ``_progress_impl``
(because their public ``progress()`` became a deprecation shim that
routes back through the engine) are resolved by
:func:`resolve_poll_fn`, which prefers the implementation over the shim
to avoid mutual recursion.
"""

from __future__ import annotations

import inspect
from typing import Callable, Protocol, runtime_checkable

__all__ = ["Pollable", "FnPollable", "resolve_poll_fn"]


@runtime_checkable
class Pollable(Protocol):
    """Anything the engine can drive."""

    def progress(self, budget: int | None = None) -> int: ...


class FnPollable:
    """Adapt a plain callable into a pollable (handy in tests and for
    one-off maintenance chores hung off an engine)."""

    def __init__(self, fn: Callable[..., int | None], name: str | None = None) -> None:
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "fn")

    def progress(self, budget: int | None = None) -> int:
        return int(self._fn(budget) or 0) if _accepts_budget(self._fn) else int(self._fn() or 0)


def _accepts_budget(fn: Callable) -> bool:
    """Whether ``fn`` can be called as ``fn(budget)``."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL):
            return True
        if p.kind is p.VAR_KEYWORD or p.name == "budget":
            return True
    return False


def resolve_poll_fn(obj: object) -> Callable[[int | None], int]:
    """Return a ``(budget) -> work`` callable for ``obj``.

    Preference order: an explicit ``_progress_impl`` (the real body
    behind a deprecation shim), then ``progress``, then ``poll``.  The
    result always tolerates a ``budget`` argument even when the
    underlying method does not take one.
    """
    for attr in ("_progress_impl", "progress", "poll"):
        fn = getattr(obj, attr, None)
        if callable(fn):
            if _accepts_budget(fn):
                return lambda budget=None, _fn=fn: int(_fn(budget) or 0)
            return lambda budget=None, _fn=fn: int(_fn() or 0)
    raise TypeError(f"{type(obj).__name__} is not pollable: no progress()/poll() method")
