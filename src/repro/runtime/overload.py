"""Overload-control primitives (docs/OVERLOAD.md).

The datapath's defense against *load* failure, complementing the fault
tolerance of :mod:`repro.core.recovery`: when offered traffic exceeds
DPU/host capacity, queues grow without bound and every request's latency
explodes together.  This module holds the mechanism layer — a shared
microsecond clock, the packed deadline word requests carry on the wire,
pluggable admission controllers (queue-depth and CoDel-style), the
client-side retry budget, and the circuit breaker the degradation ladder
trips on the DPU offload path.  Policy (when to shed, when to degrade)
lives with the servers and :mod:`repro.runtime.degradation`.

Like the rest of the ``runtime`` package this module imports nothing
from the rest of ``repro`` — every layer above imports *it*.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

__all__ = [
    "ManualClock",
    "install_clock",
    "installed_clock",
    "now_us",
    "LANE_LATENCY",
    "LANE_BULK",
    "LANE_NAMES",
    "pack_deadline",
    "unpack_deadline",
    "deadline_expired",
    "AdmissionDecision",
    "ADMIT",
    "AdmissionController",
    "QueueDepthAdmission",
    "CoDelAdmission",
    "RetryBudget",
    "CircuitBreaker",
]


# ---------------------------------------------------------------------------
# The overload clock
#
# Deadlines are *absolute* microsecond timestamps so they survive every
# hop (client -> DPU -> host) without per-stage re-arming.  On Linux
# CLOCK_MONOTONIC is machine-wide, so the default clock is coherent
# across the shm deployment's OS processes too.  Tests, the fault
# campaign, and the benchmarks install a ManualClock for determinism.

class ManualClock:
    """Deterministic microsecond clock, advanced explicitly."""

    def __init__(self, start_us: int = 0) -> None:
        self._now = int(start_us)

    def now_us(self) -> int:
        return self._now

    def advance(self, us: int) -> int:
        if us < 0:
            raise ValueError("clock cannot go backwards")
        self._now += int(us)
        return self._now


_CLOCK: ManualClock | None = None


def install_clock(clock: ManualClock | None) -> None:
    """Install a process-wide overload clock (None restores the real
    monotonic clock)."""
    global _CLOCK
    _CLOCK = clock


def installed_clock() -> ManualClock | None:
    return _CLOCK


def now_us() -> int:
    """Current overload-clock time in microseconds."""
    if _CLOCK is not None:
        return _CLOCK.now_us()
    return time.monotonic_ns() // 1000


# ---------------------------------------------------------------------------
# Priority lanes and the packed deadline word
#
# One 64-bit word carries both the absolute deadline and the request's
# priority lane: bit 0 is the lane, bits 1..63 the deadline in µs.  A
# word of 0 means "no deadline, latency lane" — the legacy encoding, so
# undecorated requests behave exactly as before.

#: small latency-critical RPCs — bypass shed decisions aimed at bulk
LANE_LATENCY = 0
#: throughput traffic — first target of admission control and batching
LANE_BULK = 1

LANE_NAMES = {LANE_LATENCY: "latency", LANE_BULK: "bulk"}


def pack_deadline(deadline_us: int, lane: int = LANE_LATENCY) -> int:
    """Pack an absolute deadline + lane into the wire word."""
    if deadline_us < 0:
        raise ValueError("deadline must be non-negative")
    if lane not in (LANE_LATENCY, LANE_BULK):
        raise ValueError(f"unknown lane {lane}")
    return (int(deadline_us) << 1) | lane


def unpack_deadline(word: int) -> tuple[int, int]:
    """Inverse of :func:`pack_deadline`: (deadline_us, lane).  A zero
    word decodes to (0, LANE_LATENCY) — no deadline."""
    return word >> 1, word & 1


def deadline_expired(word: int, now: int | None = None) -> bool:
    """Whether the packed word's deadline has passed (0 = never)."""
    deadline = word >> 1
    if not deadline:
        return False
    return (now_us() if now is None else now) >= deadline


# ---------------------------------------------------------------------------
# Admission control


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.  ``retry_after_ticks`` is the
    server's hint (in the client's drive-iteration unit) carried inside
    the RESOURCE_EXHAUSTED detail."""

    admit: bool
    retry_after_ticks: int = 0
    reason: str = ""


ADMIT = AdmissionDecision(True)


class AdmissionController:
    """Pluggable admission policy.  Servers call :meth:`decide` once per
    request before doing any decode work; subclasses implement
    :meth:`admit`.  The base class admits everything (useful as a
    counting pass-through)."""

    def __init__(self) -> None:
        self.admitted = {LANE_LATENCY: 0, LANE_BULK: 0}
        self.shed = {LANE_LATENCY: 0, LANE_BULK: 0}

    def admit(self, lane: int, depth: int, now: int) -> AdmissionDecision:
        return ADMIT

    def decide(self, lane: int, depth: int, now: int) -> AdmissionDecision:
        decision = self.admit(lane, depth, now)
        if decision.admit:
            self.admitted[lane] += 1
        else:
            self.shed[lane] += 1
        return decision

    def note_sojourn(self, sojourn_us: int, now: int) -> None:
        """Feed one served request's queueing delay to latency-sensing
        policies (no-op for depth-based ones)."""

    def pressure(self) -> float:
        """Normalized load signal in [0, ~inf): 1.0 = at the shed
        threshold.  Drives :class:`repro.runtime.degradation`."""
        return 0.0

    def stats(self) -> dict:
        return {
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
        }


class QueueDepthAdmission(AdmissionController):
    """Classic bounded-queue admission: shed bulk traffic once the
    instantaneous queue depth reaches ``max_depth``; the latency lane is
    only shed at ``hard_factor`` times that, so small latency-critical
    RPCs keep flowing while bulk absorbs the shedding.

    ``drain_per_tick`` sizes the retry-after hint: a queue ``d`` deep
    over the limit drains in about ``d / drain_per_tick`` event-loop
    passes."""

    def __init__(
        self,
        max_depth: int = 64,
        hard_factor: int = 4,
        drain_per_tick: int = 8,
    ) -> None:
        super().__init__()
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.hard_factor = hard_factor
        self.drain_per_tick = max(1, drain_per_tick)
        self._last_depth = 0

    def admit(self, lane: int, depth: int, now: int) -> AdmissionDecision:
        self._last_depth = depth
        limit = self.max_depth
        if lane == LANE_LATENCY:
            limit *= self.hard_factor
        if depth < limit:
            return ADMIT
        hint = max(1, (depth - limit) // self.drain_per_tick + 1)
        return AdmissionDecision(False, hint, f"queue depth {depth} >= {limit}")

    def pressure(self) -> float:
        return self._last_depth / self.max_depth


class CoDelAdmission(AdmissionController):
    """CoDel-style admission: shed based on *measured* queueing delay
    (sojourn time), not depth.  Standing queues — minimum sojourn above
    ``target_us`` for a full ``interval_us`` — enter the dropping state;
    while dropping, bulk requests are shed on the square-root-spaced
    CoDel cadence, which sheds harder the longer the queue stands.  The
    latency lane only sheds when sojourn exceeds ``hard_factor`` times
    the target (total collapse, not a standing bulk queue)."""

    def __init__(
        self,
        target_us: int = 5_000,
        interval_us: int = 100_000,
        hard_factor: int = 8,
        retry_after_ticks: int = 16,
    ) -> None:
        super().__init__()
        self.target_us = target_us
        self.interval_us = interval_us
        self.hard_factor = hard_factor
        self.retry_after_ticks = retry_after_ticks
        self._first_above: int | None = None
        self._dropping = False
        self._drop_next = 0
        self._drop_count = 0
        self._last_sojourn = 0

    def note_sojourn(self, sojourn_us: int, now: int) -> None:
        self._last_sojourn = sojourn_us
        if sojourn_us < self.target_us:
            self._first_above = None
            self._dropping = False
            self._drop_count = 0
            return
        if self._first_above is None:
            self._first_above = now + self.interval_us
        elif not self._dropping and now >= self._first_above:
            # The queue has stood above target for a full interval.
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now

    @property
    def dropping(self) -> bool:
        return self._dropping

    def admit(self, lane: int, depth: int, now: int) -> AdmissionDecision:
        if not self._dropping:
            return ADMIT
        if (
            lane == LANE_LATENCY
            and self._last_sojourn < self.target_us * self.hard_factor
        ):
            return ADMIT
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + int(
                self.interval_us / math.sqrt(self._drop_count)
            )
            return AdmissionDecision(
                False,
                self.retry_after_ticks,
                f"sojourn {self._last_sojourn}us above target for interval",
            )
        return ADMIT

    def pressure(self) -> float:
        return self._last_sojourn / self.target_us if self.target_us else 0.0


# ---------------------------------------------------------------------------
# Client-side retry budget (token bucket)


class RetryBudget:
    """Per-channel token bucket bounding retry amplification (the gRPC
    retry-throttling scheme): every retry spends one token, every
    successful call refills ``refill_per_success``.  With capacity C and
    refill r the steady-state retry rate cannot exceed r× the success
    rate, so a failing server sees at most a (1+r) amplification instead
    of (1 + max_retries)."""

    def __init__(
        self,
        capacity: float = 10.0,
        refill_per_success: float = 0.1,
        cost: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self.cost = float(cost)
        self.spent = 0
        self.suppressed = 0

    def on_success(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.refill_per_success)

    def try_spend(self) -> bool:
        """Take one retry token; False (and counted as suppressed) when
        the budget is exhausted — the caller must not retry."""
        if self.tokens >= self.cost:
            self.tokens -= self.cost
            self.spent += 1
            return True
        self.suppressed += 1
        return False


# ---------------------------------------------------------------------------
# Circuit breaker


class CircuitBreaker:
    """Three-state circuit breaker for the DPU offload path.

    CLOSED passes everything.  OPEN (tripped) denies — the front end
    routes denied requests through the host-parse fallback.  HALF_OPEN
    admits up to ``max_probes`` in-flight probe requests; ``probe_goal``
    consecutive successes close the breaker, any probe failure re-trips
    it.  Time is whatever monotonically increasing unit the caller
    passes (the front end uses its event-loop pass counter)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_ticks: int = 256,
        probe_goal: int = 3,
        max_probes: int = 2,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_ticks = recovery_ticks
        self.probe_goal = probe_goal
        self.max_probes = max_probes
        self.state = self.CLOSED
        self.trips = 0
        self.probes = 0
        self.denied = 0
        self._failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self._opened_at = 0
        #: (tick, new_state, reason) transition log — the campaign
        #: fingerprints this to prove trip -> half-open -> close.
        self.transitions: list[tuple[int, str, str]] = []

    def _transition(self, now: int, state: str, reason: str) -> None:
        self.state = state
        self.transitions.append((now, state, reason))

    def allow(self, now: int) -> bool:
        """Whether the offload path may carry one more request."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self._opened_at >= self.recovery_ticks:
                self.begin_half_open(now, reason="recovery timer")
            else:
                self.denied += 1
                return False
        # HALF_OPEN: admit a bounded number of concurrent probes.
        if self._probes_in_flight < self.max_probes:
            self._probes_in_flight += 1
            self.probes += 1
            return True
        self.denied += 1
        return False

    def trip(self, now: int, reason: str = "manual") -> None:
        if self.state != self.OPEN:
            self.trips += 1
            self._transition(now, self.OPEN, reason)
        self._opened_at = now
        self._failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0

    def begin_half_open(self, now: int, reason: str = "manual") -> None:
        if self.state != self.HALF_OPEN:
            self._transition(now, self.HALF_OPEN, reason)
        self._probe_successes = 0
        self._probes_in_flight = 0

    def record_success(self, now: int = 0) -> None:
        if self.state == self.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.probe_goal:
                self._transition(now, self.CLOSED, "probes healthy")
                self._failures = 0
        elif self.state == self.CLOSED:
            self._failures = 0

    def record_failure(self, now: int) -> None:
        if self.state == self.HALF_OPEN:
            self.trip(now, reason="probe failed")
        elif self.state == self.CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self.trip(now, reason=f"{self._failures} consecutive failures")

    def stats(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "probes": self.probes,
            "denied": self.denied,
        }
