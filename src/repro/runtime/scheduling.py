"""Pluggable scheduling policies for the progress engine.

A policy answers one question per engine tick: *in what order, and how
often, should the registered pollables be polled this pass?*  nanoPU's
lesson is that this decision — scheduling at the CPU–network boundary —
dominates RPC tail latency; keeping it a small strategy object is what
lets experiments swap it freely.

* ``round_robin`` — every pollable exactly once per tick, registration
  order.  Matches the hand-rolled ``client.progress(); server.progress()``
  loops this engine replaced, so it is the compatible default.
* ``weighted`` (alias ``priority``) — higher-priority pollables first;
  a pollable with weight *w* is polled *w* times per tick.  The poor
  man's WFQ for asymmetric datapaths (e.g. a DPU front end carrying 16
  connections against one host poller).
* ``adaptive`` — round-robin that exponentially backs off pollables
  which keep reporting zero work, re-polling them every 2^k ticks up to
  ``max_backoff``; one unit of work resets the backoff.  Cuts wasted
  polls on cold connections without starving them.

Policies see :class:`~repro.runtime.engine.Registration` handles, which
carry ``index`` (registration order), ``weight``, ``priority`` and the
per-pollable metrics.
"""

from __future__ import annotations

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "WeightedPolicy",
    "AdaptiveBackoffPolicy",
    "make_scheduler",
    "SCHEDULERS",
]


class SchedulingPolicy:
    """Strategy interface: plan a tick, observe its outcomes."""

    name = "base"

    def plan(self, handles: list, tick: int) -> list:
        """The poll order for this tick (handles may repeat)."""
        raise NotImplementedError

    def observe(self, handle, work: int) -> None:
        """Feedback after one poll of ``handle`` that did ``work``."""


class RoundRobinPolicy(SchedulingPolicy):
    """Each registered pollable exactly once per tick, in registration
    order — the drop-in equivalent of the replaced hand-rolled loops."""

    name = "round_robin"

    def plan(self, handles: list, tick: int) -> list:
        return list(handles)


class WeightedPolicy(SchedulingPolicy):
    """Priority-ordered, weight-repeated polling."""

    name = "weighted"

    def plan(self, handles: list, tick: int) -> list:
        ordered = sorted(handles, key=lambda h: (-h.priority, h.index))
        plan = []
        for h in ordered:
            plan.extend([h] * max(1, h.weight))
        return plan


class AdaptiveBackoffPolicy(SchedulingPolicy):
    """Round-robin with exponential backoff of idle pollables."""

    name = "adaptive"

    def __init__(self, max_backoff: int = 16) -> None:
        if max_backoff < 1 or max_backoff & (max_backoff - 1):
            raise ValueError("max_backoff must be a power of two >= 1")
        self.max_backoff = max_backoff
        self._idle_streak: dict[int, int] = {}

    def plan(self, handles: list, tick: int) -> list:
        plan = []
        for h in handles:
            streak = self._idle_streak.get(h.index, 0)
            backoff = min(1 << min(streak, self.max_backoff.bit_length()), self.max_backoff)
            # Stagger phases by registration index so backed-off pollables
            # don't all wake on the same tick.
            if streak == 0 or tick % backoff == h.index % backoff:
                plan.append(h)
        return plan

    def observe(self, handle, work: int) -> None:
        if work:
            self._idle_streak[handle.index] = 0
        else:
            self._idle_streak[handle.index] = self._idle_streak.get(handle.index, 0) + 1


SCHEDULERS = ("round_robin", "weighted", "priority", "adaptive")


def make_scheduler(spec) -> SchedulingPolicy:
    """Resolve a policy instance or name into a policy instance."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec in ("round_robin", None):
        return RoundRobinPolicy()
    if spec in ("weighted", "priority"):
        return WeightedPolicy()
    if spec == "adaptive":
        return AdaptiveBackoffPolicy()
    raise ValueError(f"unknown scheduler {spec!r} (choices: {SCHEDULERS})")
