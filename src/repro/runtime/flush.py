"""Pluggable flush policies for partially filled blocks.

A block seals and ships the moment it reaches ``block_size`` (Nagle
batching, §IV) — that decision is structural and stays in the endpoint.
What *is* policy is when to give up on filling a **partial** block: the
paper's event loop flushes partials every pass to bound latency under
low load, but a latency/throughput trade lives here and the engine makes
it pluggable:

* ``eager``  — flush any partial block every progress pass (the paper's
  behavior, and the default);
* ``nagle``  — hold a partial block for up to ``deadline_ticks`` passes
  hoping more messages batch in, then flush ("Nagle with a deadline");
* ``bytes``  — hold until the partial block accumulates
  ``byte_threshold`` payload bytes, with the deadline as the low-load
  escape hatch (without it a lone request would hang forever).

Policies only ever *answer* — the endpoint asks once per progress pass
and records the returned reason string in its ``flush_reasons`` counter
map, which the engine exports as metrics.  Reason vocabulary:

========== =====================================================
reason      meaning
========== =====================================================
eager       partial flushed because the policy is eager
deadline    partial older than the deadline (nagle/bytes escape)
bytes       partial crossed the byte threshold
block_full  block reached ``block_size`` (not a policy decision)
explicit    application called ``flush()`` directly
backlog     window-admission flush (client backlog drain)
========== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FlushState",
    "FlushPolicy",
    "EagerFlush",
    "NagleFlush",
    "ByteThresholdFlush",
    "make_flush_policy",
    "FLUSH_POLICIES",
]


@dataclass(frozen=True)
class FlushState:
    """What the endpoint knows about its open partial block."""

    pending_bytes: int  # bytes written into the open block so far
    pending_messages: int  # messages committed into the open block
    ticks_waiting: int  # progress passes since the first pending message


class FlushPolicy:
    """Decides whether a partial block should seal now.

    Returns the flush *reason* (a short string for the metrics counter)
    or ``None`` to keep batching.
    """

    name = "base"

    def should_flush(self, state: FlushState) -> str | None:
        raise NotImplementedError


class EagerFlush(FlushPolicy):
    """Flush every pass — the paper's low-latency default."""

    name = "eager"

    def should_flush(self, state: FlushState) -> str | None:
        return "eager" if state.pending_messages else None


class NagleFlush(FlushPolicy):
    """Hold partials up to a deadline measured in progress passes."""

    name = "nagle"

    def __init__(self, deadline_ticks: int = 4) -> None:
        if deadline_ticks < 1:
            raise ValueError("deadline_ticks must be >= 1")
        self.deadline_ticks = deadline_ticks

    def should_flush(self, state: FlushState) -> str | None:
        if state.pending_messages and state.ticks_waiting >= self.deadline_ticks:
            return "deadline"
        return None


class ByteThresholdFlush(FlushPolicy):
    """Hold partials until enough bytes batched; deadline as backstop."""

    name = "bytes"

    def __init__(self, byte_threshold: int, deadline_ticks: int = 16) -> None:
        if byte_threshold < 1:
            raise ValueError("byte_threshold must be >= 1")
        if deadline_ticks < 1:
            raise ValueError("deadline_ticks must be >= 1")
        self.byte_threshold = byte_threshold
        self.deadline_ticks = deadline_ticks

    def should_flush(self, state: FlushState) -> str | None:
        if not state.pending_messages:
            return None
        if state.pending_bytes >= self.byte_threshold:
            return "bytes"
        if state.ticks_waiting >= self.deadline_ticks:
            return "deadline"
        return None


FLUSH_POLICIES = ("eager", "nagle", "bytes")


def make_flush_policy(config) -> FlushPolicy:
    """Build the policy a :class:`~repro.core.config.ProtocolConfig`
    selects (``flush_policy`` / ``flush_deadline_ticks`` /
    ``flush_byte_threshold`` fields)."""
    name = getattr(config, "flush_policy", "eager")
    deadline = getattr(config, "flush_deadline_ticks", 4)
    if name == "eager":
        return EagerFlush()
    if name == "nagle":
        return NagleFlush(deadline)
    if name == "bytes":
        threshold = getattr(config, "flush_byte_threshold", 0) or config.block_size // 2
        return ByteThresholdFlush(threshold, deadline)
    raise ValueError(f"unknown flush policy {name!r} (choices: {FLUSH_POLICIES})")
