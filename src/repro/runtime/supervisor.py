"""Engine supervision: stall detection, fault containment, quarantine.

The progress engine drives every layer's event loop, which makes it the
natural place to notice that a layer has *stopped making progress* — the
failure mode injected faults produce (lost completions, dead peers) that
no exception ever announces.  The supervisor watches each registered
pollable across ticks:

* **stall**: the pollable reports ``pending()`` work but has done zero
  work for ``stall_ticks`` consecutive ticks → the ``on_stall`` action
  fires (typically :meth:`repro.core.recovery.ChannelRecovery.reset`).
* **fault**: the pollable's poll raised one of ``fault_types``
  (:class:`~repro.core.endpoint.TransportError` by default) → the fault
  is contained (the tick continues), counted, and ``on_fault`` fires;
  a pollable exceeding ``max_faults`` is **quarantined** — unregistered
  from the engine so one broken connection cannot wedge the loop that
  serves the healthy ones.

The supervisor never acts on its own authority beyond quarantine: the
recovery policy is whatever callable the owner wires in.  Everything it
observes is counted (``stalls_detected`` …) and exported to a bound
:class:`~repro.metrics.registry.MetricsRegistry`.

This module keeps the runtime package's no-upward-imports rule:
``repro.core`` types are resolved lazily, only when defaults are used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .engine import ProgressEngine, Registration

__all__ = ["SupervisorEvent", "EngineSupervisor"]


@dataclass(frozen=True)
class SupervisorEvent:
    """One thing the supervisor noticed (kept in a bounded history)."""

    tick: int
    kind: str  # "stall" | "fault" | "quarantine"
    pollable: str
    detail: str = ""


@dataclass
class _Watch:
    """Per-pollable progress bookkeeping."""

    last_work_items: int = 0
    last_progress_tick: int = 0
    faults: int = 0
    stalls: int = 0
    meta: dict = field(default_factory=dict)


class EngineSupervisor:
    """Watchdog attached to one :class:`ProgressEngine`.

    Attaching (construction) sets ``engine.supervisor``; the engine then
    reports per-tick progress via :meth:`after_tick` and poll exceptions
    via :meth:`on_poll_error`.
    """

    def __init__(
        self,
        engine: ProgressEngine,
        stall_ticks: int = 50,
        max_faults: int = 3,
        on_stall: Callable[[Registration], None] | None = None,
        on_fault: Callable[[Registration, BaseException], None] | None = None,
        fault_types: tuple[type, ...] | None = None,
        metrics=None,
        max_events: int = 256,
        trace=None,
        degradation=None,
    ) -> None:
        if stall_ticks < 1:
            raise ValueError("stall_ticks must be >= 1")
        #: DegradationManager (repro.runtime.degradation) sampled once per
        #: engine tick — overload pressure rides the same watchdog cadence
        #: as stall detection.
        self.degradation = degradation
        #: StageRecorder (repro.obs): supervisor verdicts land in the same
        #: collector as the request stages, so a stall/quarantine shows up
        #: *between* the request timelines it interrupted.
        self.trace = trace
        self.engine = engine
        self.stall_ticks = stall_ticks
        self.max_faults = max_faults
        self.on_stall = on_stall
        self.on_fault = on_fault
        self._fault_types = fault_types
        self._watches: dict[int, _Watch] = {}
        self._max_events = max_events
        self.events: list[SupervisorEvent] = []
        self.quarantined: list[Registration] = []
        # -- counters ---------------------------------------------------------
        self.stalls_detected = 0
        self.faults_contained = 0
        self.quarantines = 0
        self._gauges = None
        if metrics is not None:
            self._gauges = {
                "stalls": metrics.counter(
                    "engine_supervisor_stalls_total", "stalls detected"
                ),
                "faults": metrics.counter(
                    "engine_supervisor_faults_total", "poll faults contained"
                ),
                "quarantines": metrics.counter(
                    "engine_supervisor_quarantines_total", "pollables quarantined"
                ),
            }
        engine.supervisor = self

    # -- engine hooks ------------------------------------------------------------

    def fault_types(self) -> tuple[type, ...]:
        if self._fault_types is None:
            from repro.core.endpoint import TransportError

            self._fault_types = (TransportError,)
        return self._fault_types

    def on_poll_error(self, reg: Registration, exc: BaseException) -> bool:
        """Called by the engine when a poll raises.  Returns True when the
        fault is contained (the engine finishes the tick); False lets the
        exception propagate unchanged."""
        if not isinstance(exc, self.fault_types()):
            return False
        watch = self._watch(reg)
        watch.faults += 1
        self.faults_contained += 1
        if self._gauges is not None:
            self._gauges["faults"].inc()
        self._record(reg, "fault", repr(exc))
        if self.on_fault is not None:
            self.on_fault(reg, exc)
        if watch.faults > self.max_faults:
            self.quarantine(reg.pollable, reason=f"{watch.faults} faults")
        return True

    def after_tick(self, tick: int) -> None:
        """Called by the engine at the end of every :meth:`step`; scans
        for watched pollables that are pending-but-parked."""
        if self.degradation is not None:
            self.degradation.on_tick(tick)
        for reg in self.engine.registrations:
            watch = self._watch(reg)
            work_total = reg.metrics.work_items
            if work_total > watch.last_work_items:
                watch.last_work_items = work_total
                watch.last_progress_tick = tick
                continue
            pending = getattr(reg.pollable, "pending", None)
            if pending is None or not pending():
                # Idle without pending work is healthy quiescence.
                watch.last_progress_tick = tick
                continue
            if tick - watch.last_progress_tick >= self.stall_ticks:
                watch.stalls += 1
                self.stalls_detected += 1
                if self._gauges is not None:
                    self._gauges["stalls"].inc()
                self._record(reg, "stall", f"no progress for {self.stall_ticks} ticks")
                # Re-arm before acting so a recovery that itself takes
                # ticks does not immediately re-fire.
                watch.last_progress_tick = tick
                if self.on_stall is not None:
                    self.on_stall(reg)

    # -- quarantine --------------------------------------------------------------

    def quarantine(self, pollable, reason: str = "") -> None:
        """Unregister a pollable so the rest of the engine keeps running;
        its registration is retained for :meth:`release`."""
        reg = self.engine._by_pollable.get(id(pollable))
        if reg is None:
            return
        self.engine.unregister(pollable)
        self._watch(reg).meta["registration"] = reg
        self.quarantined.append(reg)
        self.quarantines += 1
        if self._gauges is not None:
            self._gauges["quarantines"].inc()
        self._record(reg, "quarantine", reason)

    def reset_faults(self, pollable) -> None:
        """Forgive accumulated faults (call after an external repair so
        the next incident starts a fresh count toward quarantine)."""
        reg = self.engine._by_pollable.get(id(pollable))
        if reg is not None:
            self._watch(reg).faults = 0

    def release(self, pollable) -> bool:
        """Re-admit a quarantined pollable (after external repair);
        returns whether it was found."""
        for reg in self.quarantined:
            if reg.pollable is pollable:
                self.quarantined.remove(reg)
                new = self.engine.register(
                    pollable, name=reg.name, weight=reg.weight, priority=reg.priority
                )
                self._watches.pop(id(reg), None)
                self._watch(new).faults = 0
                return True
        return False

    # -- internals ---------------------------------------------------------------

    def _watch(self, reg: Registration) -> _Watch:
        watch = self._watches.get(id(reg))
        if watch is None:
            watch = _Watch(
                last_work_items=reg.metrics.work_items,
                last_progress_tick=self.engine.tick,
            )
            self._watches[id(reg)] = watch
        return watch

    def _record(self, reg: Registration, kind: str, detail: str) -> None:
        self.events.append(SupervisorEvent(self.engine.tick, kind, reg.name, detail))
        if len(self.events) > self._max_events:
            del self.events[: len(self.events) - self._max_events]
        if self.trace is not None:
            self.trace.instant(kind, pollable=reg.name, detail=detail,
                               tick=self.engine.tick)

    def summary(self) -> str:
        return (
            f"supervisor[{self.engine.name}]: stalls={self.stalls_detected} "
            f"faults={self.faults_contained} quarantined={len(self.quarantined)}"
        )
