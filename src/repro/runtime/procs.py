"""Multiprocess deployment supervisor for the ``shm`` transport.

The single-process stack simulates the paper's three machines — client,
DPU, host — inside one address space.  This module runs them as three
real OS processes joined by the pieces the ``shm`` backend provides:

* **shared block arenas** — each mirrored receive buffer is one
  ``multiprocessing.shared_memory`` segment, created (and eventually
  unlinked) by the parent, attached by name in the child that owns that
  RBuf.  The sender-side fabric maps the peer's segment and plays the
  DMA engine, so the zero-copy ``memoryview`` datapath crosses the
  process boundary unchanged;
* **doorbells** — one ``AF_UNIX`` socketpair per QP pair carries the
  OP/ACK frames (:mod:`repro.rdma.shm_fabric`);
* **xRPC** — the client process talks to the DPU front end over another
  socketpair via :class:`~repro.xrpc.transport.StreamSocket`;
* **control** — each child holds a control socket to the parent:
  length-prefixed pickled ``(command, payload)`` tuples, with
  ``SCM_RIGHTS`` file-descriptor passing for reconnect doorbells.

Topology: the *parent* process is the client (it drives
:class:`~repro.xrpc.channel.XrpcChannel`); the two children run the DPU
engine + xRPC front end and the host engine respectively.

Crash propagation: the parent registers one :class:`ProcessPollable` per
child with its progress engine; a child that dies unexpectedly raises
:class:`~repro.core.endpoint.TransportError` into the engine's
:class:`~repro.runtime.supervisor.EngineSupervisor` — the same
containment path in-process transport faults take.  Recovery
(:meth:`ProcSupervisor.recover_dpu`) respawns the DPU process and hands
the host a fresh doorbell over the control socket; until the new process
is re-bootstrapped the front end serves through the host-parse failover
path (``DpuEngine.ready`` is False), so the kill shows up as degradation,
never unavailability.

Orphan cleanup: a child whose control socket reaches EOF (the parent
died) tears down its channel — mappings closed, doorbells closed — and
exits; the segment itself disappears when the creating side unlinks (or,
for abnormal exits, when the resource tracker sweeps).

This module sits *on top of* the rest of ``repro`` (it builds channels,
engines, and xRPC pieces), unlike the rest of the runtime package.  It is
deliberately not imported from ``repro.runtime.__init__`` so the
package's no-upward-imports rule keeps holding for the layers below;
import it as ``repro.runtime.procs``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import select
import signal
import socket as socketlib
import struct
import time
from dataclasses import dataclass

from repro.core.channel import AddressPlanner, Channel, build_endpoint_side
from repro.core.config import CLIENT_DEFAULTS, SERVER_DEFAULTS, ProtocolConfig
from repro.core.endpoint import TransportError
from repro.memory import SharedRegion
from repro.rdma import ShmFabric

from .engine import ProgressEngine
from .supervisor import EngineSupervisor

__all__ = ["ProcError", "ProcessPollable", "ProcSupervisor"]

_CTL_LEN = struct.Struct("<I")


class ProcError(RuntimeError):
    """A multiprocess-deployment control operation failed."""


# ---------------------------------------------------------------------------
# Control-plane connection
# ---------------------------------------------------------------------------


class _CtlConn:
    """One end of a parent<->child control socket: non-blocking, framed
    (u32 length + pickle), with SCM_RIGHTS fd passing for the messages
    that ship a new doorbell."""

    def __init__(self, sock) -> None:
        sock.setblocking(False)
        self.sock = sock
        self._rx = bytearray()
        self._fds: list[int] = []
        self.eof = False

    def send(self, obj, fds=()) -> None:
        data = pickle.dumps(obj)
        frame = _CTL_LEN.pack(len(data)) + data
        if fds:
            # fd-carrying messages are tiny (reconnect); one sendmsg keeps
            # the ancillary data attached to the right frame.
            socketlib.send_fds(self.sock, [frame], list(fds))
            return
        view = memoryview(frame)
        while view:
            try:
                n = self.sock.send(view)
            except BlockingIOError:
                select.select([], [self.sock], [], 1.0)
                continue
            except OSError as exc:
                raise ProcError(f"control send failed: {exc}") from exc
            view = view[n:]

    def _pump(self) -> None:
        while not self.eof:
            try:
                data, fds, _flags, _addr = socketlib.recv_fds(self.sock, 65536, 4)
            except BlockingIOError:
                return
            except OSError:
                self.eof = True
                return
            if fds:
                self._fds.extend(fds)
            if not data:
                self.eof = True
                return
            self._rx += data

    def poll(self):
        """One decoded message, or None when no complete frame waits."""
        self._pump()
        if len(self._rx) < _CTL_LEN.size:
            return None
        (n,) = _CTL_LEN.unpack_from(self._rx)
        if len(self._rx) < _CTL_LEN.size + n:
            return None
        obj = pickle.loads(bytes(self._rx[_CTL_LEN.size : _CTL_LEN.size + n]))
        del self._rx[: _CTL_LEN.size + n]
        return obj

    def wait(self, timeout: float = 30.0):
        """Block (with deadline) until one message arrives."""
        deadline = time.monotonic() + timeout
        while True:
            msg = self.poll()
            if msg is not None:
                return msg
            if self.eof:
                raise ProcError("control connection closed")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProcError(f"control request timed out after {timeout}s")
            select.select([self.sock], [], [], min(remaining, 0.1))

    def request(self, obj, timeout: float = 30.0, fds=()):
        """Send a command and wait for its ``(status, payload)`` reply;
        raises on an ``"err"`` status."""
        self.send(obj, fds=fds)
        status, payload = self.wait(timeout)
        if status != "ok":
            raise ProcError(f"{obj[0]} failed in child: {payload}")
        return payload

    def take_fds(self) -> list[int]:
        fds = self._fds
        self._fds = []
        return fds

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Crash propagation into the engine/supervisor machinery
# ---------------------------------------------------------------------------


@dataclass
class _Child:
    """Parent-side handle for one child process; the object identity is
    stable across respawns so registered pollables keep watching."""

    role: str
    proc: object = None
    ctl: _CtlConn | None = None
    expected_exit: bool = False
    death_reported: bool = False


class ProcessPollable:
    """Engine adapter that turns an unexpected child death into a
    :class:`~repro.core.endpoint.TransportError` — raised from its poll,
    so the engine's :class:`~repro.runtime.supervisor.EngineSupervisor`
    contains, counts, and reports it exactly like an in-process
    transport fault."""

    def __init__(self, child: _Child) -> None:
        self.child = child
        self.name = f"{child.role}-process"

    def progress(self, budget: int | None = None) -> int:
        child = self.child
        proc = child.proc
        if proc is None or child.expected_exit or child.death_reported:
            return 0
        if proc.is_alive():
            return 0
        child.death_reported = True
        raise TransportError(self.name, f"exited (code {proc.exitcode})")

    def pending(self) -> bool:
        return False


# ---------------------------------------------------------------------------
# Child processes
# ---------------------------------------------------------------------------


@dataclass
class _SideSpec:
    """Everything a child needs to build its half of the channel (passed
    through ``fork``, so callables and schema objects ride along)."""

    role: str  # "host" | "dpu"
    name: str
    client_config: ProtocolConfig
    server_config: ProtocolConfig
    c2s_base: int
    s2c_base: int
    rbuf_segment: str
    trace: bool
    handshake_timeout: float
    stall_ticks: int
    max_faults: int
    fault_plan: object | None = None


def _close_all(socks) -> None:
    for s in socks:
        try:
            s.close()
        except OSError:
            pass


def _child_preamble(close_socks) -> None:
    # The parent owns the terminal; children must not react to a Ctrl-C
    # meant for it (teardown arrives via the control socket instead).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _close_all(close_socks)


def _make_collector(spec: _SideSpec):
    if not spec.trace:
        return None
    from repro.obs import TraceCollector

    return TraceCollector()


def _attach_side_tracing(collector, spec, endpoint, fabric, component):
    from repro.obs import attach_endpoint

    attach_endpoint(collector, endpoint, component, stream=spec.name)
    fabric.trace = collector.recorder(f"{spec.role}.fabric")


def _attach_injector(spec: _SideSpec, channel):
    if spec.fault_plan is None:
        return None
    from repro.faults.injector import FaultInjector

    return FaultInjector(spec.fault_plan).attach(channel)


def _export_and_clear(collector):
    if collector is None:
        return None
    from repro.obs import export_events

    snapshot = export_events(collector)
    collector.clear()
    return snapshot


def _child_loop(ctl: _CtlConn, engine: ProgressEngine, handlers, on_exit) -> None:
    """Free-running engine loop with control polling.  EOF on the control
    socket means the parent is gone — clean up and leave (orphan
    cleanup)."""
    idle = 0
    while True:
        work = engine.step()
        msg = ctl.poll()
        if msg is not None:
            idle = 0
            cmd, payload = msg
            if cmd == "exit":
                try:
                    ctl.send(("ok", on_exit(payload)))
                except ProcError:
                    pass
                return
            fn = handlers.get(cmd)
            if fn is None:
                ctl.send(("err", f"unknown command {cmd!r}"))
                continue
            try:
                ctl.send(("ok", fn(payload)))
            except Exception as exc:  # noqa: BLE001 — reported to the parent
                ctl.send(("err", f"{type(exc).__name__}: {exc}"))
            continue
        if ctl.eof:
            return
        if work:
            idle = 0
        else:
            idle += 1
            if idle > 16:
                time.sleep(0.0002)


def _host_child(spec: _SideSpec, schema, service, servicer,
                ctl_sock, db_sock, close_socks) -> None:
    """Host process: server endpoint + HostEngine + servicer."""
    _child_preamble(close_socks)
    from repro.offload.engine import HostEngine
    from repro.xrpc.dpu_frontend import register_offloaded_servicer

    ctl = _CtlConn(ctl_sock)
    rbuf = SharedRegion.attach(
        spec.c2s_base, spec.client_config.send_buffer_size,
        spec.rbuf_segment, f"{spec.name}.server.rbuf",
    )
    server, space = build_endpoint_side(
        "server", spec.name, spec.server_config, spec.client_config,
        spec.s2c_base, spec.c2s_base, rbuf_region=rbuf,
    )
    fabric = ShmFabric(auto_flush=False)
    fabric.bind(server.qp, db_sock)

    engine = ProgressEngine(scheduler=spec.server_config.scheduling,
                            name=f"{spec.name}.host-engine")
    supervisor = EngineSupervisor(engine, stall_ticks=spec.stall_ticks,
                                  max_faults=spec.max_faults)
    engine.register(fabric, name="fabric")
    engine.register(server, name="server")

    channel = Channel(fabric, None, server, None, space, engine)
    host = HostEngine(channel, schema)
    register_offloaded_servicer(host, service, servicer)
    injector = _attach_injector(spec, channel)

    collector = _make_collector(spec)
    if collector is not None:
        _attach_side_tracing(collector, spec, server, fabric, "host.rpc")
        host.trace = collector.recorder("host.engine")
        if injector is not None:
            injector.trace = collector.recorder("host.faults")

    fabric.handshake(server.qp, timeout=spec.handshake_timeout)

    def _reconnect(_payload):
        """Adopt a fresh doorbell (fd via SCM_RIGHTS) after the DPU
        process was replaced: same teardown the in-process recovery runs,
        then rebind + handshake against the new peer."""
        fds = ctl.take_fds()
        if not fds:
            raise ProcError("reconnect carried no doorbell fd")
        new_db = socketlib.socket(fileno=fds[0])
        for fd in fds[1:]:
            os.close(fd)
        server.qp.to_error()
        while server.recv_cq.poll(max_entries=1 << 10):
            pass
        if server.qp.send_cq is not server.recv_cq:
            while server.qp.send_cq.poll(max_entries=1 << 10):
                pass
        fabric.discard_in_flight()
        server.qp.reset_to_init()
        fabric.bind(server.qp, new_db)
        fabric.handshake(server.qp, timeout=spec.handshake_timeout)
        server.reset_connection_state()
        # The dead peer's fault storm may have quarantined the endpoint;
        # re-admit it with a clean slate.
        supervisor.release(server)
        supervisor.reset_faults(server)
        supervisor.reset_faults(fabric)
        return None

    def _stats(_payload):
        return {
            "host_deserialized": host.host_deserialized,
            "fabric_ops": fabric.total_operations,
            "fabric_bytes": fabric.total_bytes,
            "rnr_retransmissions": fabric.rnr_retransmissions,
            "faults_contained": supervisor.faults_contained,
            "quarantines": supervisor.quarantines,
            "injector_events": injector.faults_fired if injector else 0,
            "injector_fingerprint": injector.fingerprint() if injector else None,
        }

    handlers = {
        "send_bootstrap": lambda _p: host.send_bootstrap(),
        "reconnect": _reconnect,
        "stats": _stats,
        "trace": lambda _p: _export_and_clear(collector),
    }

    def on_exit(_payload):
        return {"stats": _stats(None), "trace": _export_and_clear(collector)}

    try:
        ctl.send(("ready", {"pid": os.getpid()}))
        _child_loop(ctl, engine, handlers, on_exit)
    finally:
        channel.close()
        ctl.close()


def _dpu_child(spec: _SideSpec, schema, service,
               ctl_sock, db_sock, xrpc_sock, close_socks) -> None:
    """DPU process: client endpoint + DpuEngine + xRPC front end."""
    _child_preamble(close_socks)
    from repro.offload.adt import AdtError
    from repro.offload.engine import DpuEngine
    from repro.xrpc.dpu_frontend import OffloadedXrpcServer
    from repro.xrpc.transport import StreamSocket

    ctl = _CtlConn(ctl_sock)
    rbuf = SharedRegion.attach(
        spec.s2c_base, spec.server_config.send_buffer_size,
        spec.rbuf_segment, f"{spec.name}.client.rbuf",
    )
    client, space = build_endpoint_side(
        "client", spec.name, spec.client_config, spec.server_config,
        spec.c2s_base, spec.s2c_base, rbuf_region=rbuf,
    )
    fabric = ShmFabric(auto_flush=False)
    fabric.bind(client.qp, db_sock)

    engine = ProgressEngine(scheduler=spec.client_config.scheduling,
                            name=f"{spec.name}.dpu-engine")
    supervisor = EngineSupervisor(engine, stall_ticks=spec.stall_ticks,
                                  max_faults=spec.max_faults)

    channel = Channel(fabric, client, None, space, None, engine)
    dpu = DpuEngine(channel, decode_mode=spec.client_config.decode_mode)
    front = OffloadedXrpcServer(None, f"{spec.name}:xrpc", dpu, service)
    front.adopt(StreamSocket(xrpc_sock, "dpu-front"))
    injector = _attach_injector(spec, channel)

    engine.register(fabric, name="fabric")
    engine.register(client, name="client")
    engine.register(front, name="front")

    collector = _make_collector(spec)
    if collector is not None:
        _attach_side_tracing(collector, spec, client, fabric, "dpu.rpc")
        front.trace = collector.recorder("dpu.front")
        dpu.trace = collector.recorder("dpu.engine")
        if injector is not None:
            injector.trace = collector.recorder("dpu.faults")

    fabric.handshake(client.qp, timeout=spec.handshake_timeout)

    def _recv_bootstrap(payload):
        """Poll for the host's bootstrap SEND, tolerating cross-process
        latency: the blob is in flight on the doorbell socket, not one
        engine step away as it is in-process."""
        max_polls, window = payload or (2000, 10.0)
        deadline = time.monotonic() + window
        while True:
            try:
                dpu.receive_bootstrap(max_polls)
                return None
            except AdtError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.005)

    def _stats(_payload):
        return {
            "ready": dpu.ready,
            "requests_forwarded": front.requests_forwarded,
            "responses_returned": front.responses_returned,
            "fallback_requests": front.fallback_requests,
            "fallback_calls": dpu.fallback_calls,
            "deserialized": dpu.stats.messages,
            "fabric_ops": fabric.total_operations,
            "fabric_bytes": fabric.total_bytes,
            "faults_contained": supervisor.faults_contained,
            "injector_events": injector.faults_fired if injector else 0,
            "injector_fingerprint": injector.fingerprint() if injector else None,
        }

    handlers = {
        "recv_bootstrap": _recv_bootstrap,
        "crash_engine": lambda reason: dpu.crash(reason or "injected"),
        "revive_engine": lambda _p: dpu.revive(),
        "stats": _stats,
        "trace": lambda _p: _export_and_clear(collector),
    }

    def on_exit(_payload):
        return {"stats": _stats(None), "trace": _export_and_clear(collector)}

    try:
        ctl.send(("ready", {"pid": os.getpid()}))
        _child_loop(ctl, engine, handlers, on_exit)
    finally:
        channel.close()
        ctl.close()


# ---------------------------------------------------------------------------
# The parent-side supervisor
# ---------------------------------------------------------------------------


class ProcSupervisor:
    """Spawns, connects, supervises, and tears down the three-process
    deployment (client = this process, DPU child, host child).

    Typical use::

        sup = ProcSupervisor(schema, service, servicer).start()
        chan = sup.xrpc_channel()
        response = chan.call_sync("pkg.Svc/Method", request, ResponseCls)
        ...
        sup.stop()

    ``start()`` performs the whole startup handshake: shared segments,
    doorbell/xRPC/control socketpairs, fork, RDMA-level HELLO exchange,
    and (by default) the ADT bootstrap transfer.
    """

    def __init__(
        self,
        schema,
        service,
        servicer,
        client_config: ProtocolConfig = CLIENT_DEFAULTS,
        server_config: ProtocolConfig = SERVER_DEFAULTS,
        name: str = "procs",
        trace: bool = False,
        handshake_timeout: float = 10.0,
        host_fault_plan=None,
        dpu_fault_plan=None,
        stall_ticks: int = 500,
        max_faults: int = 3,
        auto_recover: bool = False,
    ) -> None:
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ProcError("multiprocess deployment requires the fork start method") from exc
        self.schema = schema
        self.service = service
        self.servicer = servicer
        # The supervisor *is* the shm deployment; normalize so configs
        # built for inproc runs work unchanged.
        self.client_config = dataclasses.replace(client_config, transport="shm")
        self.server_config = dataclasses.replace(server_config, transport="shm")
        self.name = name
        self.trace = trace
        self.handshake_timeout = handshake_timeout
        self.host_fault_plan = host_fault_plan
        self.dpu_fault_plan = dpu_fault_plan
        self.stall_ticks = stall_ticks
        self.max_faults = max_faults
        #: respawn a dead DPU child automatically from the engine's fault
        #: path (tests usually drive :meth:`recover_dpu` explicitly)
        self.auto_recover = auto_recover

        planner = AddressPlanner()
        self._c2s_base = planner.take(self.client_config.send_buffer_size)
        self._s2c_base = planner.take(self.server_config.send_buffer_size)

        self._host = _Child("host")
        self._dpu = _Child("dpu")
        self._segments: list[SharedRegion] = []
        self._client_raw_sock = None
        self._client_socket = None
        self._cached_channel = None
        self.child_stats: dict[str, dict] = {}
        self.dpu_respawns = 0
        self.collector = None
        if trace:
            from repro.obs import TraceCollector

            self.collector = TraceCollector()

        #: the client-side engine: watches child liveness; xRPC channels
        #: built by :meth:`xrpc_channel` drive it while waiting.
        self.engine = ProgressEngine(name=f"{name}.client-engine")
        self.supervisor = EngineSupervisor(
            self.engine, stall_ticks=stall_ticks, max_faults=max_faults,
            on_fault=self._on_child_fault,
        )
        self.engine.register(ProcessPollable(self._host), name="host-process")
        self.engine.register(ProcessPollable(self._dpu), name="dpu-process")

    # -- lifecycle ---------------------------------------------------------------

    def start(self, bootstrap: bool = True) -> "ProcSupervisor":
        if self._host.proc is not None:
            raise ProcError("already started")
        from repro.memory import segment_name

        c2s_seg = SharedRegion(
            self._c2s_base, self.client_config.send_buffer_size,
            f"{self.name}.c2s", segment=segment_name(f"{self.name}-c2s"),
        )
        s2c_seg = SharedRegion(
            self._s2c_base, self.server_config.send_buffer_size,
            f"{self.name}.s2c", segment=segment_name(f"{self.name}-s2c"),
        )
        self._segments = [c2s_seg, s2c_seg]

        ctl_h_p, ctl_h_c = socketlib.socketpair()
        ctl_d_p, ctl_d_c = socketlib.socketpair()
        db_h, db_d = socketlib.socketpair()
        xr_p, xr_d = socketlib.socketpair()
        round_socks = [ctl_h_p, ctl_h_c, ctl_d_p, ctl_d_c, db_h, db_d, xr_p, xr_d]

        host_spec = self._spec("host", c2s_seg.segment, self.host_fault_plan)
        dpu_spec = self._spec("dpu", s2c_seg.segment, self.dpu_fault_plan)

        host_keep = {ctl_h_c, db_h}
        self._host.proc = self._mp.Process(
            target=_host_child, name=f"{self.name}-host",
            args=(host_spec, self.schema, self.service, self.servicer,
                  ctl_h_c, db_h, [s for s in round_socks if s not in host_keep]),
        )
        self._host.proc.start()

        dpu_keep = {ctl_d_c, db_d, xr_d}
        self._dpu.proc = self._mp.Process(
            target=_dpu_child, name=f"{self.name}-dpu",
            args=(dpu_spec, self.schema, self.service,
                  ctl_d_c, db_d, xr_d, [s for s in round_socks if s not in dpu_keep]),
        )
        self._dpu.proc.start()

        parent_keep = {ctl_h_p, ctl_d_p, xr_p}
        _close_all(s for s in round_socks if s not in parent_keep)
        self._host.ctl = _CtlConn(ctl_h_p)
        self._dpu.ctl = _CtlConn(ctl_d_p)
        self._client_raw_sock = xr_p

        self._await_ready(self._host)
        self._await_ready(self._dpu)
        if bootstrap:
            self.bootstrap()
        return self

    def _spec(self, role: str, rbuf_segment: str, fault_plan) -> _SideSpec:
        return _SideSpec(
            role=role, name=self.name,
            client_config=self.client_config, server_config=self.server_config,
            c2s_base=self._c2s_base, s2c_base=self._s2c_base,
            rbuf_segment=rbuf_segment, trace=self.trace,
            handshake_timeout=self.handshake_timeout,
            stall_ticks=self.stall_ticks, max_faults=self.max_faults,
            fault_plan=fault_plan,
        )

    def _await_ready(self, child: _Child, timeout: float | None = None) -> None:
        timeout = timeout or (self.handshake_timeout + 20.0)
        kind, payload = child.ctl.wait(timeout)
        if kind != "ready":
            raise ProcError(f"{child.role}: expected ready, got {kind}: {payload}")

    def bootstrap(self, max_polls: int = 2000, window: float = 10.0) -> None:
        """Run the ADT bootstrap transfer: host SENDs the blob, the DPU
        child polls it in and builds its deserializer.  Also the
        re-offload step after :meth:`recover_dpu`."""
        self._host.ctl.request(("send_bootstrap", None))
        self._dpu.ctl.request(("recv_bootstrap", (max_polls, window)),
                              timeout=window + 20.0)

    # -- client plumbing ---------------------------------------------------------

    def _drive(self) -> None:
        self.engine.step()
        time.sleep(0.0001)

    def xrpc_channel(self, encode_mode: str | None = None):
        """The client's xRPC channel to the DPU front end (cached; a DPU
        respawn invalidates it and the next call returns a fresh one over
        the new socketpair — an honest client reconnect)."""
        if self._cached_channel is not None:
            return self._cached_channel
        from repro.xrpc.channel import XrpcChannel
        from repro.xrpc.transport import StreamSocket

        if self._client_raw_sock is None:
            raise ProcError("not started (or the DPU connection is being replaced)")
        self._client_socket = StreamSocket(self._client_raw_sock, f"{self.name}-client")
        channel = XrpcChannel(None, f"{self.name}:xrpc", socket=self._client_socket,
                              encode_mode=encode_mode)
        channel.drive = self._drive
        if self.collector is not None:
            channel.trace = self.collector.recorder("client.xrpc")
        self._cached_channel = channel
        return channel

    # -- fault handling ----------------------------------------------------------

    def _on_child_fault(self, reg, exc) -> None:
        if self.auto_recover and reg.name == "dpu-process":
            self.recover_dpu()

    def kill_dpu(self) -> None:
        """SIGKILL the DPU process — the failover acceptance scenario.
        The death surfaces through :class:`ProcessPollable` on the next
        engine step; :meth:`recover_dpu` brings a fresh process up."""
        if self._dpu.proc is None:
            raise ProcError("no DPU process")
        self._dpu.expected_exit = False
        self._dpu.proc.kill()
        self._dpu.proc.join(5)

    def recover_dpu(self, bootstrap: bool = False, timeout: float = 30.0) -> None:
        """Replace the DPU process: respawn, hand the host a fresh
        doorbell (fd over the control socket), re-handshake.  With
        ``bootstrap=False`` the new process starts *degraded* — the front
        end serves via the host-parse failover until :meth:`bootstrap`
        re-arms offloading — which keeps the recovery window observable
        and the re-offload moment explicit."""
        old = self._dpu
        if old.proc is not None and old.proc.is_alive():
            old.expected_exit = True
            old.proc.terminate()
            old.proc.join(5)
        if old.ctl is not None:
            old.ctl.close()
        if self._client_socket is not None:
            self._client_socket.close()
            self._client_socket = None
        elif self._client_raw_sock is not None:
            self._client_raw_sock.close()
        self._client_raw_sock = None
        self._cached_channel = None

        ctl_d_p, ctl_d_c = socketlib.socketpair()
        db_h, db_d = socketlib.socketpair()
        xr_p, xr_d = socketlib.socketpair()
        round_socks = [ctl_d_p, ctl_d_c, db_h, db_d, xr_p, xr_d]
        # The host child predates these sockets, so it holds no copies;
        # only the parent's pre-existing fds leak into the new child.
        extra_close = [s for s in (self._host.ctl.sock,) if s is not None]

        dpu_spec = self._spec("dpu", self._segments[1].segment, self.dpu_fault_plan)
        dpu_keep = {ctl_d_c, db_d, xr_d}
        proc = self._mp.Process(
            target=_dpu_child, name=f"{self.name}-dpu-{self.dpu_respawns + 1}",
            args=(dpu_spec, self.schema, self.service,
                  ctl_d_c, db_d, xr_d,
                  [s for s in round_socks if s not in dpu_keep] + extra_close),
        )
        proc.start()
        _close_all([ctl_d_c, db_d, xr_d])

        old.proc = proc
        old.ctl = _CtlConn(ctl_d_p)
        old.expected_exit = False
        old.death_reported = False
        self._client_raw_sock = xr_p
        self.dpu_respawns += 1

        # The new child blocks in its doorbell handshake until the host
        # rebinds; order matters: reconnect first, then await ready.
        try:
            self._host.ctl.request(("reconnect", None), timeout=timeout,
                                   fds=[db_h.fileno()])
        finally:
            db_h.close()
        self._await_ready(old, timeout)
        self.supervisor.reset_faults(self._pollable("dpu-process"))
        if bootstrap:
            self.bootstrap()

    def _pollable(self, name: str):
        for reg in self.engine.registrations:
            if reg.name == name:
                return reg.pollable
        for reg in self.supervisor.quarantined:
            if reg.name == name:
                self.supervisor.release(reg.pollable)
                return reg.pollable
        raise ProcError(f"no registered pollable {name!r}")

    # -- observability -----------------------------------------------------------

    def collect_traces(self) -> int:
        """Pull both children's trace rings into :attr:`collector`
        (timestamps re-based onto the parent's epoch via the shared
        monotonic clock).  Children clear after export, so repeated calls
        are incremental.  Returns events imported."""
        if self.collector is None:
            raise ProcError("tracing is disabled (construct with trace=True)")
        from repro.obs import import_events

        imported = 0
        for child in (self._host, self._dpu):
            if child.ctl is None or child.ctl.eof:
                continue
            snapshot = child.ctl.request(("trace", None))
            if snapshot:
                imported += import_events(self.collector, snapshot)
        return imported

    def stats(self) -> dict:
        """Live counters from both children plus the parent's view."""
        out = {
            "dpu_respawns": self.dpu_respawns,
            "parent_faults_contained": self.supervisor.faults_contained,
        }
        for child in (self._host, self._dpu):
            if child.ctl is None or child.ctl.eof:
                out[child.role] = self.child_stats.get(child.role)
                continue
            out[child.role] = child.ctl.request(("stats", None))
        return out

    def crash_dpu_engine(self, reason: str = "injected") -> None:
        """Soft-crash the DPU *engine* (process stays up) — the in-process
        fault campaign's dpu_crash, across the boundary."""
        self._dpu.ctl.request(("crash_engine", reason))

    def revive_dpu_engine(self) -> None:
        self._dpu.ctl.request(("revive_engine", None))

    # -- teardown ----------------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> dict:
        """Orderly teardown: ask each child to exit (collecting its final
        stats and trace snapshot), escalate to terminate/kill on a
        deadline, unlink the shared segments.  Idempotent."""
        results: dict[str, dict] = {}
        for child in (self._dpu, self._host):
            if child.proc is None:
                continue
            child.expected_exit = True
            if child.proc.is_alive() and child.ctl is not None and not child.ctl.eof:
                try:
                    payload = child.ctl.request(("exit", None), timeout=timeout)
                    if payload:
                        results[child.role] = payload
                except ProcError:
                    pass
            child.proc.join(timeout)
            if child.proc.is_alive():
                child.proc.terminate()
                child.proc.join(2)
            if child.proc.is_alive():  # pragma: no cover - last resort
                child.proc.kill()
                child.proc.join(2)
            if child.ctl is not None:
                child.ctl.close()
                child.ctl = None
            child.proc = None
        for role, payload in results.items():
            self.child_stats[role] = payload.get("stats")
            snapshot = payload.get("trace")
            if snapshot and self.collector is not None:
                from repro.obs import import_events

                import_events(self.collector, snapshot)
        if self._client_socket is not None:
            self._client_socket.close()
            self._client_socket = None
        elif self._client_raw_sock is not None:
            self._client_raw_sock.close()
        self._client_raw_sock = None
        self._cached_channel = None
        for segment in self._segments:
            segment.cleanup()
        self._segments = []
        return results

    def __enter__(self) -> "ProcSupervisor":
        if self._host.proc is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
