"""Trace-driven autotuning: guarded hill-climbing over live knobs.

The control half of the closed observability loop (docs/AUTOTUNE.md).
The telemetry hub turns the trace stream into windowed snapshots; this
module turns snapshots into knob movements.  RPCAcc (PAPERS.md)
reconfigures its datapath per workload offline; this is the online
version — one guarded step per observation window, scored only by what
the telemetry actually measured.

Like :mod:`repro.runtime.overload`, this module imports nothing from
the rest of ``repro``: a :class:`Knob` is a named setter over an ordered
value ladder, a snapshot is anything the caller's ``score_fn`` can read,
and burn is a scalar the caller supplies (the SLO tracker's worst
short-horizon burn).  The wiring — which knobs exist, what score means,
where decisions are traced — lives with the harness
(:func:`repro.workloads.openloop.run_autotuned`).

The control discipline, in order of importance:

1. **One step at a time.**  Exactly one knob moves per observation
   window, so the next window's delta is attributable to it.
2. **Hysteresis.**  After any action the tuner *holds* for
   ``hold_windows`` windows, rebuilding a stable baseline before acting
   again — reacting to a single window chases noise.
3. **Rollback.**  A step is probed for ``probe_windows`` windows (the
   mean score judged against the pre-step baseline, within
   ``tolerance``) and must not push SLO burn past ``burn_floor`` — or
   past the pre-step burn, whichever is higher — at any probe window;
   otherwise the knob snaps back and that direction goes on cooldown.
   Judging a probe on the same number of windows the baseline averaged
   keeps the comparison symmetric — a single noisy window can neither
   sell a bad step nor sink a good one.  The datapath is never left
   running a config the telemetry judged worse.
4. **Momentum.**  An accepted step retries the same knob and direction
   next time — hill climbing walks a monotone slope in
   ``hold_windows``-sized strides instead of re-discovering it.
"""

from __future__ import annotations

import hashlib
from collections import deque

__all__ = [
    "Knob",
    "KnobSet",
    "TuneDecision",
    "AutoTuner",
]


class Knob:
    """One live-adjustable parameter: a name, an ordered value ladder
    (the safe range — the tuner never leaves it), and a setter that
    applies a value to the running datapath."""

    __slots__ = ("name", "values", "apply", "index")

    def __init__(self, name: str, values, apply, initial_index: int = 0) -> None:
        values = list(values)
        if not values:
            raise ValueError(f"knob {name!r} needs at least one value")
        if not 0 <= initial_index < len(values):
            raise ValueError(f"knob {name!r}: initial index out of range")
        self.name = name
        self.values = values
        self.apply = apply
        self.index = initial_index

    @property
    def value(self):
        return self.values[self.index]

    def set_index(self, index: int) -> None:
        self.index = index
        self.apply(self.values[index])

    def can_step(self, direction: int) -> bool:
        return 0 <= self.index + direction < len(self.values)


class KnobSet:
    """Ordered collection the tuner walks round-robin."""

    def __init__(self, knobs) -> None:
        self.knobs = list(knobs)
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError("knob names must be unique")

    def __iter__(self):
        return iter(self.knobs)

    def __len__(self) -> int:
        return len(self.knobs)

    def get(self, name: str) -> Knob:
        for knob in self.knobs:
            if knob.name == name:
                return knob
        raise KeyError(name)

    def config(self) -> dict:
        """Current value per knob (the dashboard / result surface)."""
        return {knob.name: knob.value for knob in self.knobs}


class TuneDecision:
    """One logged controller action (every one becomes a traced ``tune``
    stage, so Perfetto shows the loop acting on the datapath)."""

    __slots__ = ("window", "action", "knob", "old_value", "new_value",
                 "score", "baseline", "burn", "reason")

    #: action vocabulary
    STEP = "step"          # probing a new value
    ACCEPT = "accept"      # probe beat the baseline; value kept
    ROLLBACK = "rollback"  # probe lost; value reverted, direction cooled
    HOLD = "hold"          # observing; no movement this window

    def __init__(self, window: int, action: str, knob: str | None,
                 old_value, new_value, score: float, baseline: float,
                 burn: float, reason: str) -> None:
        self.window = window
        self.action = action
        self.knob = knob
        self.old_value = old_value
        self.new_value = new_value
        self.score = score
        self.baseline = baseline
        self.burn = burn
        self.reason = reason

    def render(self) -> str:
        move = (
            f"{self.knob}: {self.old_value} -> {self.new_value}"
            if self.knob is not None else "-"
        )
        return (
            f"w{self.window:<4} {self.action:<8} {move:<28} "
            f"score={self.score:.3f} base={self.baseline:.3f} "
            f"burn={self.burn:.2f}x ({self.reason})"
        )

    def fingerprint_line(self) -> str:
        return (
            f"tune:{self.window}:{self.action}:{self.knob}:"
            f"{self.old_value}:{self.new_value}:{self.score:.4f}:{self.burn:.3f}"
        )


class AutoTuner:
    """Guarded-step hill climber over a :class:`KnobSet`.

    ``score_fn(snapshot) -> float`` defines "better" (higher wins); the
    harness composes it from goodput and lane-latency terms, which is
    where lane-awareness lives — a latency-lane p99 penalty makes the
    tuner back off batching the moment the fast lane pays for bulk
    throughput.  Call :meth:`observe` once per sealed telemetry window
    (wire it as a hub listener); ``burn`` is the SLO tracker's worst
    short-horizon burn at that window, and any action the tuner takes is
    returned (and appended to :attr:`decisions`)."""

    def __init__(self, knobs: KnobSet, score_fn, tolerance: float = 0.02,
                 hold_windows: int = 2, cooldown: int = 4,
                 warmup_windows: int = 2, probe_windows: int | None = None,
                 burn_floor: float = 1.0, max_decisions: int = 4096) -> None:
        if isinstance(knobs, (list, tuple)):
            knobs = KnobSet(knobs)
        self.knobs = knobs
        self.score_fn = score_fn
        self.tolerance = tolerance
        self.hold_windows = hold_windows
        self.cooldown = cooldown
        self.warmup_windows = warmup_windows
        #: windows a probe runs before judgement (default: the same
        #: count the baseline averaged, so the comparison is symmetric)
        self.probe_windows = hold_windows if probe_windows is None else probe_windows
        #: burn level below which the rollback guard stays quiet.  The
        #: caller sets this above the burn a *single* violating window
        #: produces inside the tracker's short horizon (1/short/budget),
        #: so transient noise cannot revert a step the score accepted —
        #: only sustained burn can.
        self.burn_floor = burn_floor
        self.decisions: deque = deque(maxlen=max_decisions)
        self.windows_seen = 0
        self.steps = 0
        self.accepts = 0
        self.rollbacks = 0
        # -- controller state ---------------------------------------------
        self._probe = None          # (knob, old_index, direction, baseline, burn)
        self._probe_scores: list = []
        self._probe_burn = 0.0
        self._hold_scores: deque = deque(maxlen=max(1, hold_windows))
        self._held = 0
        self._rr = 0                # round-robin cursor into the knob set
        self._momentum = None       # (knob_name, direction) to retry first
        self._cooldowns: dict = {}  # (knob_name, direction) -> windows left
        self._direction: dict = {knob.name: +1 for knob in self.knobs}

    # -- the per-window entry point ---------------------------------------

    def observe(self, snapshot, burn: float = 0.0) -> TuneDecision | None:
        """Fold one telemetry window in; returns the action taken, or
        None while warming up with nothing to log."""
        self.windows_seen += 1
        window = getattr(snapshot, "window", self.windows_seen - 1)
        score = self.score_fn(snapshot)
        for key in list(self._cooldowns):
            self._cooldowns[key] -= 1
            if self._cooldowns[key] <= 0:
                del self._cooldowns[key]

        if self._probe is not None:
            self._probe_scores.append(score)
            self._probe_burn = max(self._probe_burn, burn)
            if len(self._probe_scores) < self.probe_windows:
                return None  # still probing: judge on the full window set
            return self._judge_probe(window)

        self._hold_scores.append(score)
        self._held += 1
        if self.windows_seen <= self.warmup_windows or self._held < self.hold_windows:
            return None
        return self._try_step(window, score, burn)

    # -- probe lifecycle ---------------------------------------------------

    def _judge_probe(self, window: int) -> TuneDecision:
        knob, old_index, direction, baseline, base_burn = self._probe
        score = sum(self._probe_scores) / len(self._probe_scores)
        burn = self._probe_burn
        self._probe = None
        self._probe_scores = []
        self._probe_burn = 0.0
        self._held = 0
        self._hold_scores.clear()
        burn_worsened = burn > max(self.burn_floor, base_burn + 1e-9)
        score_ok = score >= baseline * (1.0 - self.tolerance)
        if score_ok and not burn_worsened:
            self.accepts += 1
            self._momentum = (knob.name, direction)
            self._direction[knob.name] = direction
            # seed the next baseline with the probe mean itself: the
            # accepted config produced it, and momentum wants to move
            # again after hold_windows, not rebuild from nothing.
            self._hold_scores.append(score)
            self._held = 1
            decision = TuneDecision(
                window, TuneDecision.ACCEPT, knob.name,
                knob.values[old_index], knob.value, score, baseline, burn,
                "score held" if score < baseline else "score improved",
            )
        else:
            self.rollbacks += 1
            knob.set_index(old_index)
            self._momentum = None
            self._cooldowns[(knob.name, direction)] = self.cooldown
            reason = "slo burn worsened" if burn_worsened else "score regressed"
            decision = TuneDecision(
                window, TuneDecision.ROLLBACK, knob.name,
                knob.values[old_index + direction], knob.value,
                score, baseline, burn, reason,
            )
        self.decisions.append(decision)
        return decision

    def _try_step(self, window: int, score: float, burn: float) -> TuneDecision | None:
        baseline = sum(self._hold_scores) / len(self._hold_scores)
        choice = self._pick(burn)
        if choice is None:
            self._held = 0  # keep observing; every direction is cooled/parked
            return None
        knob, direction = choice
        old_index = knob.index
        knob.set_index(old_index + direction)
        self.steps += 1
        self._probe = (knob, old_index, direction, baseline, burn)
        decision = TuneDecision(
            window, TuneDecision.STEP, knob.name,
            knob.values[old_index], knob.value, score, baseline, burn,
            "momentum" if self._momentum == (knob.name, direction) else "explore",
        )
        self.decisions.append(decision)
        return decision

    def _pick(self, burn: float):
        """Next (knob, direction) to probe: momentum first, then
        round-robin through the set, preferring each knob's last good
        direction and skipping cooled-down moves."""
        if self._momentum is not None:
            name, direction = self._momentum
            knob = self.knobs.get(name)
            if knob.can_step(direction) and (name, direction) not in self._cooldowns:
                return knob, direction
            self._momentum = None
        n = len(self.knobs)
        for i in range(n):
            knob = self.knobs.knobs[(self._rr + i) % n]
            preferred = self._direction[knob.name]
            for direction in (preferred, -preferred):
                if not knob.can_step(direction):
                    continue
                if (knob.name, direction) in self._cooldowns:
                    continue
                self._rr = (self._rr + i + 1) % n
                return knob, direction
        return None

    # -- result surface ----------------------------------------------------

    def config(self) -> dict:
        return self.knobs.config()

    def fingerprint_lines(self):
        for decision in self.decisions:
            yield decision.fingerprint_line()

    def fingerprint(self) -> str:
        """sha256 over the decision log — the determinism contract the
        CI smoke job verifies (same seed, same decisions, same hash)."""
        h = hashlib.sha256()
        for line in self.fingerprint_lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()
