"""Engine observability: per-pollable counters, registry export.

The paper instruments the RPC library itself and scrapes it with a
Prometheus-style monitor (§VI).  The engine extends that to the runtime
layer: every poll of every registered pollable is counted here — polls,
work items, idle polls (and the derived idle ratio), plus the flush
reasons the endpoints record — so every layer boundary the engine drives
is observable for free.

Counters live as plain ints (the hot path must stay cheap); binding a
:class:`~repro.metrics.registry.MetricsRegistry` creates labeled gauges
(``engine_polls_total{pollable=...}`` etc.) that
:meth:`EngineMetrics.sync` refreshes — the engine calls it once per
tick, so a scraper sees current values.
"""

from __future__ import annotations

__all__ = ["PollableMetrics", "EngineMetrics"]


class PollableMetrics:
    """Counters for one registered pollable."""

    __slots__ = ("polls", "work_items", "idle_polls", "flushes")

    def __init__(self) -> None:
        self.polls = 0
        self.work_items = 0
        self.idle_polls = 0
        #: reason -> count; endpoints share their ``flush_reasons`` dict
        #: here at registration time, so their counts surface verbatim.
        self.flushes: dict[str, int] = {}

    def record(self, work: int) -> None:
        self.polls += 1
        self.work_items += work
        if work == 0:
            self.idle_polls += 1

    @property
    def idle_ratio(self) -> float:
        return self.idle_polls / self.polls if self.polls else 0.0


class EngineMetrics:
    """Aggregates per-pollable metrics; optionally mirrors them into a
    metrics registry for scraping."""

    def __init__(self) -> None:
        self.ticks = 0
        self.per_pollable: dict[str, PollableMetrics] = {}
        self._registry = None
        self._gauges = None

    def track(self, name: str, shared_flushes: dict | None = None) -> PollableMetrics:
        pm = PollableMetrics()
        if shared_flushes is not None:
            pm.flushes = shared_flushes
        self.per_pollable[name] = pm
        return pm

    @property
    def total_polls(self) -> int:
        return sum(pm.polls for pm in self.per_pollable.values())

    @property
    def total_work(self) -> int:
        return sum(pm.work_items for pm in self.per_pollable.values())

    # -- registry export -----------------------------------------------------

    def bind_registry(self, registry, prefix: str = "engine") -> None:
        """Create the exported metric families in ``registry``."""
        self._registry = registry
        self._gauges = {
            "ticks": registry.gauge(f"{prefix}_ticks", "engine scheduling passes"),
            "polls": registry.gauge(
                f"{prefix}_polls_total", "polls per pollable", ("pollable",)
            ),
            "work": registry.gauge(
                f"{prefix}_work_items_total", "work items per pollable", ("pollable",)
            ),
            "idle": registry.gauge(
                f"{prefix}_idle_ratio", "idle poll fraction per pollable", ("pollable",)
            ),
            "flushes": registry.gauge(
                f"{prefix}_flushes_total",
                "block flushes by reason",
                ("pollable", "reason"),
            ),
        }
        self.sync()

    def sync(self) -> None:
        """Push current counter values into the bound registry."""
        if self._gauges is None:
            return
        g = self._gauges
        g["ticks"].set(self.ticks)
        for name, pm in self.per_pollable.items():
            g["polls"].labels(name).set(pm.polls)
            g["work"].labels(name).set(pm.work_items)
            g["idle"].labels(name).set(pm.idle_ratio)
            for reason, count in pm.flushes.items():
                g["flushes"].labels(name, reason).set(count)

    # -- human-readable summary ----------------------------------------------

    def summary(self) -> str:
        lines = [f"engine: {self.ticks} ticks, {self.total_polls} polls, "
                 f"{self.total_work} work items"]
        for name, pm in sorted(self.per_pollable.items()):
            flushes = (
                " flushes=" + ",".join(f"{r}:{c}" for r, c in sorted(pm.flushes.items()))
                if pm.flushes
                else ""
            )
            lines.append(
                f"  {name}: polls={pm.polls} work={pm.work_items} "
                f"idle_ratio={pm.idle_ratio:.2f}{flushes}"
            )
        return "\n".join(lines)
