"""The unified progress-engine runtime.

One pluggable event loop for the whole datapath: components implement
the :class:`Pollable` protocol (``progress(budget) -> work_done``) and
register with a :class:`ProgressEngine`, which drives them under a
pluggable scheduling policy, applies pluggable partial-block flush
policies through the endpoints, and instruments every poll with metrics
and optional tracing spans.  See docs/RUNTIME.md.

This package deliberately imports nothing from the rest of ``repro`` at
module level — every layer (core, xrpc, sim) imports *it*, so it must
sit at the bottom of the dependency stack.
"""

from .autotune import AutoTuner, Knob, KnobSet, TuneDecision
from .degradation import (
    DegradationEvent,
    DegradationManager,
    DegradationStep,
    standard_ladder,
)
from .engine import EngineError, EngineState, ProgressEngine, Registration
from .flush import (
    FLUSH_POLICIES,
    ByteThresholdFlush,
    EagerFlush,
    FlushPolicy,
    FlushState,
    NagleFlush,
    make_flush_policy,
)
from .metrics import EngineMetrics, PollableMetrics
from .overload import (
    LANE_BULK,
    LANE_LATENCY,
    AdmissionController,
    AdmissionDecision,
    CircuitBreaker,
    CoDelAdmission,
    ManualClock,
    QueueDepthAdmission,
    RetryBudget,
    install_clock,
    now_us,
    pack_deadline,
    unpack_deadline,
)
from .pollable import FnPollable, Pollable, resolve_poll_fn
from .scheduling import (
    SCHEDULERS,
    AdaptiveBackoffPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    WeightedPolicy,
    make_scheduler,
)
from .supervisor import EngineSupervisor, SupervisorEvent

__all__ = [
    "EngineError",
    "EngineState",
    "ProgressEngine",
    "Registration",
    "FLUSH_POLICIES",
    "ByteThresholdFlush",
    "EagerFlush",
    "FlushPolicy",
    "FlushState",
    "NagleFlush",
    "make_flush_policy",
    "EngineMetrics",
    "PollableMetrics",
    "FnPollable",
    "Pollable",
    "resolve_poll_fn",
    "SCHEDULERS",
    "AdaptiveBackoffPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "WeightedPolicy",
    "make_scheduler",
    "EngineSupervisor",
    "SupervisorEvent",
    "LANE_BULK",
    "LANE_LATENCY",
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "CoDelAdmission",
    "ManualClock",
    "QueueDepthAdmission",
    "RetryBudget",
    "install_clock",
    "now_us",
    "pack_deadline",
    "unpack_deadline",
    "DegradationEvent",
    "DegradationManager",
    "DegradationStep",
    "standard_ladder",
    "AutoTuner",
    "Knob",
    "KnobSet",
    "TuneDecision",
]
